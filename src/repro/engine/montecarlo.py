"""Monte-Carlo sampling baseline (in the spirit of MCDB [10]).

The related work the paper contrasts with relies on sampling possible
worlds and estimating answer probabilities from frequencies.  This engine
implements that baseline: it samples valuations of the random variables,
evaluates the query deterministically in each sampled world, and reports
empirical tuple frequencies.  It converges at the usual ``O(1/√n)``
Monte-Carlo rate and — unlike the compiled engine — provides no exactness
guarantee, which is the paper's core argument for exact computation via
knowledge compilation.

The sampler is **batched**:

* all ``samples × variables`` draws happen up front, one vectorized
  categorical draw per variable (``numpy.random.Generator`` when numpy is
  available, a single ``random.Random.choices(k=samples)`` call per
  variable otherwise);
* only the variables and relations actually referenced by the query are
  sampled and instantiated;
* for the common shape — selections/projections/grouping over
  tuple-independent tables under set semantics — whole *batches of
  worlds* are evaluated at once from per-row presence vectors, without
  materialising any per-world relation;
* the generic per-world fallback memoises repeated worlds, so databases
  with few effective variables never evaluate the same world twice.

The sampler is also **sharded** when a ``workers`` count is requested:
each batch is split by the deterministic planner of
:mod:`repro.parallel.shards` into fixed-size shards whose RNG streams are
spawned from a per-round token, the shards evaluate independently (on a
process pool for ``workers >= 2``, inline for ``workers=1``), and the
per-shard counts merge by summation in shard order.  Because the shard
plan and the seed derivation never depend on the worker count, a seeded
run is **bit-identical** for any ``workers`` setting — including the
sequential-stopping interval path, which shards every doubling round the
same way.  A worker crash or pickle failure degrades to inline shard
evaluation with the reason recorded in ``last_run_info``.

Estimates remain plain empirical frequencies either way, and a fixed
``seed`` makes runs reproducible.
"""

from __future__ import annotations

import math
import random
import time
from statistics import NormalDist

from repro.algebra.expressions import SConst, Var
from repro.algebra.monoid import (
    CappedSumMonoid,
    CountMonoid,
    MaxMonoid,
    MinMonoid,
    SumMonoid,
)
from repro.algebra.semimodule import ModuleExpr
from repro.algebra.valuation import Valuation
from repro.codegen import (
    CodegenUnsupported,
    codegen_enabled,
    codegen_strict,
    kernel_for,
)
from repro.db.pvc_table import PVCDatabase
from repro.engine.spec import ProbInterval
from repro.parallel import pool as parallel_pool
from repro.parallel.reducer import merge_counts
from repro.parallel.shards import plan_shards, resolve_workers, spawn_seeds
from repro.prob import kernels
from repro.query.executor import execute_deterministic, prepare
from repro.resilience.deadline import Deadline, deadline_scope
from repro.resilience.faults import fault_point
from repro.query.ast import (
    BaseRelation,
    Extend,
    GroupAgg,
    Project,
    Query,
    Select,
)
from repro.query.validate import validate_query

try:  # optional accelerator; the engine is fully functional without it
    import numpy as _np
except ImportError:  # pragma: no cover
    _np = None

__all__ = ["MonteCarloEngine"]


class _Fallback(Exception):
    """Raised internally when the batched fast path does not apply."""


class MonteCarloEngine:
    """Approximate query answering by sampling possible worlds."""

    def __init__(
        self,
        db: PVCDatabase,
        seed: int | None = None,
        codegen: bool | None = None,
    ):
        self.db = db
        #: Per-world execution strategy of the generic fallback: ``None``
        #: follows the ``REPRO_CODEGEN`` environment knob, ``True``/
        #: ``False`` force the compiled kernels on or off.  Compiled and
        #: interpreted per-world evaluation are bit-identical, so this —
        #: like ``workers`` — never changes a seeded answer.
        self.codegen = codegen
        self.random = random.Random(seed)
        self._np_rng = (
            _np.random.default_rng(seed) if _np is not None else None
        )
        #: Diagnostics of the most recent run: sample budget, whether the
        #: vectorized batch evaluator handled the query, and how many
        #: distinct worlds the fallback actually evaluated.  Internal —
        #: the engine adapters surface these uniformly as
        #: ``QueryResult.stats``; read that instead.
        self.last_run_info: dict = {}

    # -- sampling ------------------------------------------------------------

    def sample_valuation(self) -> Valuation:
        """Draw one valuation of all registered variables."""
        assignment = {}
        for name, dist in self.db.registry.items():
            values, weights = zip(*dist.items())
            assignment[name] = self.random.choices(values, weights=weights)[0]
        return Valuation(assignment, self.db.semiring)

    def _sample_index_columns(
        self, names, samples: int, rng=None, np_rng=None
    ) -> dict:
        """Batched draws as ``{name: (support_values, index_column)}``.

        One vectorized categorical draw per variable via the numpy
        ``Generator`` when available, else one ``choices(k=samples)``
        call per variable — either way O(variables) RNG calls instead of
        O(variables × samples).  Draws stay in *index* form so the batch
        evaluator can turn them into presence vectors with one fancy
        index per variable instead of a per-sample Python loop.

        ``rng``/``np_rng`` override the engine's own streams; the sharded
        scheme passes per-shard streams here so draws are independent of
        both the worker count and the engine's mutable state.
        """
        if rng is None:
            rng = self.random
            np_rng = self._np_rng
        drawn: dict = {}
        use_numpy = np_rng is not None and kernels.numpy_enabled()
        for name in names:
            values, weights = zip(*self.db.registry[name].items())
            if use_numpy:
                probabilities = _np.asarray(weights, dtype=float)
                probabilities = probabilities / probabilities.sum()
                indices = np_rng.choice(
                    len(values), size=samples, p=probabilities
                )
            else:
                indices = rng.choices(
                    range(len(values)), weights=weights, k=samples
                )
            drawn[name] = (values, indices)
        return drawn

    # -- estimation ----------------------------------------------------------

    def tuple_probabilities(
        self,
        query: Query,
        samples: int = 1000,
        workers: int | str | None = None,
        shard_size: int | None = None,
    ) -> dict[tuple, float]:
        """Empirical estimate of ``P[t ∈ answer]`` from ``samples`` worlds.

        ``workers=None`` keeps the legacy single-stream sampler.  Any
        explicit worker count (including 1) switches to the sharded
        scheme, whose seeded results are bit-identical across worker
        counts; ``workers >= 2`` evaluates the shards on a process pool.
        """
        if samples <= 0:
            raise ValueError("need at least one sample")
        validate_query(query, self.db.catalog())
        referenced = list(dict.fromkeys(query.base_relations()))
        workers = resolve_workers(workers)
        self.last_run_info = {"samples": samples, "batched": False}
        if workers is None:
            counts, batched = self._sampled_counts(query, referenced, samples)
            self.last_run_info["batched"] = batched
        else:
            counts, info = self._sharded_counts(
                query, referenced, samples, workers, shard_size
            )
            self.last_run_info.update(info)
        return {values: count / samples for values, count in counts.items()}

    def _referenced_variables(self, referenced) -> list[str]:
        needed: set[str] = set()
        for name in referenced:
            needed |= self.db.tables[name].variables
        return sorted(needed)

    def _sampled_counts(
        self, query: Query, referenced, samples: int, prepared=None
    ) -> tuple[dict[tuple, int], bool]:
        """Draw ``samples`` worlds and count answer-tuple occurrences.

        Tries the vectorized whole-batch evaluator first; returns the
        counts and whether the batched path handled the query.  Callers
        that evaluate many rounds pass ``prepared`` so the plan (and any
        compiled kernel riding its cache) is built once, not per round.
        """
        drawn = self._sample_index_columns(
            self._referenced_variables(referenced), samples
        )
        return self._evaluate_drawn(query, referenced, drawn, samples, prepared)

    def _evaluate_drawn(
        self, query: Query, referenced, drawn, samples: int, prepared=None
    ) -> tuple[dict[tuple, int], bool]:
        """Count answer tuples over already-drawn index columns.

        Counts are an exact, deterministic function of the drawn columns
        — whether the vectorized batch evaluator, the compiled per-world
        kernel, or the interpreted fallback computes them — which is what
        makes sharded evaluation (any split of the columns, any worker
        count) merge to identical totals.
        """
        if _np is not None and kernels.numpy_enabled():
            try:
                counts = self._batched_counts(query, drawn, samples)
            except _Fallback:
                counts = None
            if counts is not None:
                return counts, True
        return (
            self._per_world_counts(query, referenced, drawn, samples, prepared),
            False,
        )

    # -- deterministic sharding -----------------------------------------------

    def _shard_context(self, query: Query, referenced) -> tuple:
        """The per-run context shared by every shard of every round.

        The plan is prepared — and, when codegen is on, compiled — once
        here in the parent: forked shard workers inherit the prepared
        query through the context (the :class:`CompiledPlan` riding its
        ``op_cache`` is itself a cheap picklable payload), so no shard
        re-plans or re-compiles.
        """
        names = self._referenced_variables(referenced)
        prepared = prepare(
            query, self.db.catalog(), self.db.cardinalities(), optimize=False
        )
        if codegen_enabled(self.codegen):
            kernel_for(prepared, self.db.semiring)
        return (
            self.db,
            query,
            tuple(referenced),
            tuple(names),
            self.codegen,
            prepared,
        )

    def _sharded_counts(
        self,
        query: Query,
        referenced,
        samples: int,
        workers: int,
        shard_size: int | None = None,
        shared: parallel_pool.SharedPool | None = None,
    ) -> tuple[dict[tuple, int], dict]:
        """Draw and evaluate ``samples`` worlds in deterministic shards.

        The shard plan and the per-shard RNG seeds depend only on the
        batch size and on one token drawn from the engine's seeded parent
        stream — never on ``workers`` — so the merged counts are
        bit-identical for any worker count.  Shards run on a process pool
        when ``workers >= 2`` (falling back to inline evaluation with a
        recorded reason when the pool cannot run); iterative callers pass
        a :class:`~repro.parallel.pool.SharedPool` so the pool forks once
        and serves every round.
        """
        sizes = plan_shards(samples, shard_size)
        # One token per sampling round: the parent stream advances the
        # same way no matter how many shards or workers follow.
        token = self.random.getrandbits(63)
        seeds = spawn_seeds(token, len(sizes))
        payloads = list(zip(seeds, sizes))
        if shared is not None:
            results, info = shared.run(payloads)
        else:
            results, info = parallel_pool.execute(
                _evaluate_shard,
                self._shard_context(query, referenced),
                payloads,
                workers,
            )
        counts = merge_counts(result[0] for result in results)
        batched = all(result[1] for result in results)
        distinct = sum(result[2] for result in results)
        codegen_used = any(result[3] for result in results)
        stats = {
            "batched": batched,
            "shards": len(sizes),
            "codegen_used": codegen_used,
        }
        stats.update(info)
        if distinct:
            stats["distinct_worlds"] = distinct
        return counts, stats

    def estimate_intervals(
        self,
        query: Query,
        epsilon: float = 0.05,
        delta: float = 0.05,
        max_samples: int | None = None,
        time_limit: float | None = None,
        initial_batch: int = 256,
        workers: int | str | None = None,
        shard_size: int | None = None,
    ) -> tuple[dict[tuple, ProbInterval], dict]:
        """Sequential-stopping (ε, δ) estimation of ``P[t ∈ answer]``.

        Drives :meth:`estimate_intervals_iter` to completion and returns
        the final ``(intervals, info)`` snapshot.
        """
        intervals: dict = {}
        info: dict = {}
        for intervals, info in self.estimate_intervals_iter(
            query,
            epsilon=epsilon,
            delta=delta,
            max_samples=max_samples,
            time_limit=time_limit,
            initial_batch=initial_batch,
            workers=workers,
            shard_size=shard_size,
        ):
            pass
        return intervals, info

    def estimate_intervals_iter(
        self,
        query: Query,
        epsilon: float = 0.05,
        delta: float = 0.05,
        max_samples: int | None = None,
        time_limit: float | None = None,
        initial_batch: int = 256,
        workers: int | str | None = None,
        shard_size: int | None = None,
    ):
        """Yield ``(intervals, info)`` snapshots of an (ε, δ) estimation.

        Worlds are drawn in doubling rounds; after round ``k`` every
        observed tuple gets a confidence interval — the intersection of
        the Hoeffding and Wilson intervals, each at level ``δ_k/2`` with
        ``δ_k = δ/(k(k+1))`` so the levels across all rounds sum to δ.
        By the union bound the interval reported at the (data-dependent)
        stopping round covers the true probability with probability
        ≥ 1 − δ, per tuple.  Sampling stops as soon as every interval
        width is ≤ ε, or the sample budget / time limit trips; the last
        snapshot's ``info["converged"]`` records which.

        Tuples never observed in any sampled world are not reported
        (matching :meth:`tuple_probabilities`); their true probability
        may still be positive but is at most the resolution of the draw.

        With an explicit ``workers`` count every doubling round is drawn
        through the deterministic sharded scheme, so seeded interval
        trajectories — every snapshot, every stopping decision except a
        wall-clock ``time_limit`` trip — are bit-identical across worker
        counts.
        """
        if epsilon <= 0.0:
            raise ValueError("sequential stopping needs epsilon > 0")
        if not (0.0 < delta < 1.0):
            raise ValueError("delta must be in (0, 1)")
        validate_query(query, self.db.catalog())
        workers = resolve_workers(workers)
        referenced = list(dict.fromkeys(query.base_relations()))
        if max_samples is None:
            # Past this Hoeffding alone pushes every width under ε even
            # with the round-wise δ split (k ≤ 64 covers any feasible n).
            max_samples = math.ceil(
                2.0 * (math.log(4.0 / delta) + 13.0) / (epsilon * epsilon)
            )
        self.last_run_info = {"samples": 0, "batched": True}
        shared = (
            parallel_pool.SharedPool(
                _evaluate_shard,
                self._shard_context(query, referenced),
                workers,
            )
            if workers is not None
            else None
        )
        try:
            yield from self._interval_rounds(
                query,
                referenced,
                epsilon,
                delta,
                max_samples,
                time_limit,
                initial_batch,
                workers,
                shard_size,
                shared,
            )
        finally:
            if shared is not None:
                shared.close()

    @staticmethod
    def _deadline_clamp(
        batch: int, drawn_total: int, elapsed: float, remaining: float
    ) -> int:
        """Samples of the next round that fit into ``remaining`` seconds.

        Uses the observed sampling rate ``drawn_total / elapsed``; always
        returns at least one sample so the loop makes progress and then
        observes the deadline trip on the next clock check.  Pure —
        exercised directly by the overshoot regression tests.
        """
        if remaining <= 0.0:
            return 1
        if elapsed <= 0.0 or drawn_total <= 0:
            return max(1, batch)
        affordable = int(drawn_total / elapsed * remaining)
        return max(1, min(batch, affordable))

    def _interval_rounds(
        self,
        query,
        referenced,
        epsilon,
        delta,
        max_samples,
        time_limit,
        initial_batch,
        workers,
        shard_size,
        shared,
    ):
        """The doubling-round loop of :meth:`estimate_intervals_iter`
        (split out so the shared pool's lifetime wraps the generator)."""
        start = time.perf_counter()
        deadline = Deadline.after(time_limit)
        totals: dict[tuple, int] = {}
        drawn_total = 0
        round_no = 0
        batched = True
        codegen_used = False
        round_info: dict = {}
        prepared = None
        if workers is None:
            # Plan (and, through the kernel cache, compile) once for the
            # whole doubling loop; sharded rounds get the same hoisting
            # from _shard_context.
            prepared = prepare(
                query, self.db.catalog(), self.db.cardinalities(), optimize=False
            )
        while True:
            round_no += 1
            fault_point("engine.montecarlo.round")
            batch = initial_batch if drawn_total == 0 else drawn_total
            batch = min(batch, max_samples - drawn_total)
            if deadline is not None and drawn_total:
                # Doubling rounds only check the clock *between* rounds,
                # so an unclamped final round could blow far past the
                # limit; cap it to what the observed sampling rate fits
                # into the remaining budget.
                batch = self._deadline_clamp(
                    batch,
                    drawn_total,
                    time.perf_counter() - start,
                    deadline.remaining(),
                )
            if workers is None:
                counts, round_batched = self._sampled_counts(
                    query, referenced, batch, prepared
                )
                round_info = dict(self.last_run_info)
            else:
                # The scope hands the deadline to the pool watchdog, so
                # a wedged shard worker is killed (and the round rerun
                # inline) instead of hanging past the time budget.
                with deadline_scope(deadline):
                    counts, round_info = self._sharded_counts(
                        query, referenced, batch, workers, shard_size, shared
                    )
                round_batched = round_info["batched"]
            batched = batched and round_batched
            drawn_total += batch
            for values, count in counts.items():
                totals[values] = totals.get(values, 0) + count
            level = delta / (round_no * (round_no + 1))
            intervals = {
                values: self._confidence_interval(
                    count, drawn_total, level / 2.0
                )
                for values, count in totals.items()
            }
            max_width = max(
                (interval.width for interval in intervals.values()),
                default=0.0,
            )
            converged = max_width <= epsilon
            elapsed = time.perf_counter() - start
            out_of_time = time_limit is not None and elapsed >= time_limit
            done = converged or drawn_total >= max_samples or out_of_time
            codegen_used = codegen_used or round_info.get(
                "codegen_used", False
            )
            info = {
                "samples": drawn_total,
                "rounds": round_no,
                "batched": batched,
                "converged": converged,
                "max_width": max_width,
                "wall_seconds": elapsed,
                "codegen_used": codegen_used,
            }
            if out_of_time and not converged:
                info["deadline_hit"] = True
            if workers is not None:
                info["workers"] = round_info.get("workers", 1)
                info["shards"] = round_info.get("shards", 0)
                if "parallel_fallback" in round_info:
                    info["parallel_fallback"] = round_info["parallel_fallback"]
            self.last_run_info = dict(info)
            yield intervals, info
            if done:
                return

    @staticmethod
    def _confidence_interval(
        count: int, n: int, alpha: float
    ) -> ProbInterval:
        """A two-sided confidence interval missing with probability ≤ 2α.

        Intersects the finite-sample Hoeffding interval with the Wilson
        score interval (tighter near 0 and 1), each at significance
        ``alpha``; by the union bound the intersection misses the true
        probability with probability at most ``2·alpha``.
        """
        p_hat = count / n
        hoeffding = math.sqrt(math.log(2.0 / alpha) / (2.0 * n))
        low = p_hat - hoeffding
        high = p_hat + hoeffding
        z = NormalDist().inv_cdf(1.0 - alpha / 2.0)
        z2 = z * z
        denom = 1.0 + z2 / n
        center = (p_hat + z2 / (2.0 * n)) / denom
        half = (z / denom) * math.sqrt(
            p_hat * (1.0 - p_hat) / n + z2 / (4.0 * n * n)
        )
        low = max(low, center - half, 0.0)
        high = min(high, center + half, 1.0)
        if low > high:  # numerically inconsistent: fall back to Hoeffding
            low = max(p_hat - hoeffding, 0.0)
            high = min(p_hat + hoeffding, 1.0)
        return ProbInterval(low, high)

    def estimate_probability(
        self, query: Query, values: tuple, samples: int = 1000
    ) -> float:
        """Estimate the probability of one specific answer tuple."""
        estimates = self.tuple_probabilities(query, samples)
        return estimates.get(tuple(values), 0.0)

    # -- generic per-world fallback -------------------------------------------

    def _per_world_counts(
        self, query: Query, referenced, drawn, samples: int, prepared=None
    ) -> dict[tuple, int]:
        """Evaluate sampled worlds one by one, memoising repeated worlds.

        Only the relations referenced by the query are instantiated, and
        only their variables enter the world key (in index form), so
        databases with few effective variables collapse to a handful of
        evaluations.  The query is planned — and, when codegen applies,
        compiled and bound — once; with a bound kernel each distinct
        world is one call that maps support indices straight onto
        precoerced semiring values and runs the fused plan function, no
        per-world relation objects or Valuation dicts at all.  Compiled
        and interpreted evaluation yield bit-identical supports.
        """
        names = list(drawn)
        supports = [drawn[name][0] for name in names]
        index_columns = [drawn[name][1] for name in names]
        semiring = self.db.semiring
        tables = [(name, self.db.tables[name]) for name in referenced]
        if prepared is None:
            prepared = prepare(
                query, self.db.catalog(), self.db.cardinalities(), optimize=False
            )
        bound = None
        if codegen_enabled(self.codegen):
            kernel = kernel_for(prepared, semiring)
            if kernel is not None:
                try:
                    bound = kernel.bind(self.db, names, supports)
                except CodegenUnsupported:
                    if codegen_strict():
                        raise
                    bound = None
        self.last_run_info["codegen_used"] = bound is not None
        counts: dict[tuple, int] = {}
        world_cache: dict[tuple, list] = {}
        distinct = 0
        for sample in range(samples):
            fault_point("engine.montecarlo.world")
            key = tuple(int(column[sample]) for column in index_columns)
            support = world_cache.get(key)
            if support is None:
                distinct += 1
                if bound is not None:
                    support = list(bound.run_indices(key))
                else:
                    valuation = Valuation(
                        {
                            name: values[i]
                            for name, values, i in zip(names, supports, key)
                        },
                        semiring,
                    )
                    world = {
                        name: table.instantiate(valuation, semiring)
                        for name, table in tables
                    }
                    result = execute_deterministic(
                        prepared, world, semiring, codegen=self.codegen
                    )
                    support = list(result.support())
                world_cache[key] = support
            for values in support:
                counts[values] = counts.get(values, 0) + 1
        self.last_run_info["distinct_worlds"] = distinct
        return counts

    # -- vectorized batch evaluation ------------------------------------------

    def _batched_counts(
        self, query: Query, drawn, samples: int
    ) -> dict[tuple, int] | None:
        """Evaluate all sampled worlds at once from presence vectors.

        Supports set semantics (Boolean semiring) over simple
        tuple-independent tables — every row annotated ``1_K`` or with a
        single Boolean variable and carrying constant values — for query
        shapes built from selection, projection, attribute duplication
        and one grouping/aggregation over SUM/COUNT/MIN/MAX.  Raises
        :class:`_Fallback` for anything else.
        """
        if not self.db.semiring.is_boolean:
            raise _Fallback
        coerce = self.db.semiring.coerce
        presence = {}
        for name, (values, indices) in drawn.items():
            # One bool per *support value*, then one fancy index — no
            # per-sample Python loop.
            coerced = _np.fromiter(
                (bool(coerce(v)) for v in values), dtype=bool, count=len(values)
            )
            presence[name] = coerced[_np.asarray(indices)]
        kind, attributes, payload = self._translate(query, presence, samples)
        if kind == "rows":
            merged: dict[tuple, object] = {}
            for values, mask in payload:
                existing = merged.get(values)
                merged[values] = mask if existing is None else existing | mask
            return {
                values: int(mask.sum())
                for values, mask in merged.items()
                if mask.any()
            }
        counts, _ = payload
        return {values: count for values, count in counts.items() if count}

    def _translate(self, query: Query, presence, samples: int):
        """Recursively lower a query to batched form.

        Returns ``("rows", attributes, [(values, presence_mask), ...])``
        for non-aggregated relations and
        ``("counts", attributes, ({values: sample_count}, groupby))``
        after a grouping operator — the grouping attributes ride along
        because they decide which later projections stay exact.
        """
        if isinstance(query, BaseRelation):
            return self._translate_base(query.name, presence, samples)
        if isinstance(query, Select):
            kind, attributes, payload = self._translate(
                query.child, presence, samples
            )
            if kind == "rows":
                kept = []
                for values, mask in payload:
                    verdict = query.predicate.evaluate(
                        dict(zip(attributes, values))
                    )
                    if verdict is True:
                        kept.append((values, mask))
                    elif verdict is not False:
                        raise _Fallback  # symbolic predicate result
                return kind, attributes, kept
            counts, groupby = payload
            filtered = {}
            for values, count in counts.items():
                verdict = query.predicate.evaluate(dict(zip(attributes, values)))
                if verdict is True:
                    filtered[values] = count
                elif verdict is not False:
                    raise _Fallback
            return kind, attributes, (filtered, groupby)
        if isinstance(query, Project):
            kind, attributes, payload = self._translate(
                query.child, presence, samples
            )
            indexes = [attributes.index(a) for a in query.attributes]
            if kind == "rows":
                merged: dict[tuple, object] = {}
                for values, mask in payload:
                    projected = tuple(values[i] for i in indexes)
                    existing = merged.get(projected)
                    merged[projected] = (
                        mask if existing is None else existing | mask
                    )
                return kind, list(query.attributes), list(merged.items())
            # Counts have lost per-sample identity, but merging stays
            # exact when the grouping attributes survive the projection:
            # tuples from different groups remain distinct, and within a
            # group each sample carries exactly one aggregate tuple, so
            # buckets sharing a projection are disjoint sample sets.
            counts, groupby = payload
            if not set(groupby).issubset(query.attributes):
                raise _Fallback
            projected_counts: dict[tuple, int] = {}
            for values, count in counts.items():
                projected = tuple(values[i] for i in indexes)
                projected_counts[projected] = (
                    projected_counts.get(projected, 0) + count
                )
            return kind, list(query.attributes), (projected_counts, groupby)
        if isinstance(query, Extend):
            kind, attributes, payload = self._translate(
                query.child, presence, samples
            )
            if kind != "rows":
                raise _Fallback
            index = attributes.index(query.source)
            extended = [
                (values + (values[index],), mask) for values, mask in payload
            ]
            return kind, attributes + [query.target], extended
        if isinstance(query, GroupAgg):
            kind, attributes, payload = self._translate(
                query.child, presence, samples
            )
            if kind != "rows":
                raise _Fallback
            return self._translate_groupagg(query, attributes, payload, samples)
        raise _Fallback  # Product, Union: generic path

    def _translate_base(self, name: str, presence, samples: int):
        table = self.db.tables[name]
        if len(table) * samples > 50_000_000:
            raise _Fallback  # presence matrix would not be worth the memory
        ones = _np.ones(samples, dtype=bool)
        merged: dict[tuple, object] = {}
        for row in table.rows:
            annotation = row.annotation
            if isinstance(annotation, SConst) and annotation.value == 1:
                mask = ones
            elif isinstance(annotation, Var):
                mask = presence[annotation.name]
            else:
                raise _Fallback  # correlated/complex annotation
            if any(isinstance(v, ModuleExpr) for v in row.values):
                raise _Fallback
            # Set semantics: rows with identical values collapse to one
            # tuple per world — present when any of their events fires.
            existing = merged.get(row.values)
            merged[row.values] = mask if existing is None else existing | mask
        return "rows", list(table.schema.attributes), list(merged.items())

    def _translate_groupagg(self, query: GroupAgg, attributes, rows, samples: int):
        group_indexes = [attributes.index(a) for a in query.groupby]
        spec_indexes = []
        for spec in query.aggregations:
            if spec.attribute is None:
                spec_indexes.append(None)
            else:
                spec_indexes.append(attributes.index(spec.attribute))

        groups: dict[tuple, list] = {}
        for values, mask in rows:
            key = tuple(values[i] for i in group_indexes)
            groups.setdefault(key, []).append((values, mask))
        if not query.groupby:
            # $∅ always produces one tuple, holding the monoid-neutral
            # aggregates in worlds where no input row is present.
            groups.setdefault((), [])

        counts: dict[tuple, int] = {}
        for key, members in groups.items():
            if members:
                matrix = _np.vstack([mask for _, mask in members])
            else:
                matrix = _np.zeros((0, samples), dtype=bool)
            if query.groupby:
                present = matrix.any(axis=0)
                if not present.any():
                    continue
            else:
                present = _np.ones(matrix.shape[1], dtype=bool)
            columns = []
            for spec, index in zip(query.aggregations, spec_indexes):
                columns.append(
                    self._aggregate_column(spec, index, members, matrix)
                )
            selected = [column[present] for column in columns]
            if len(selected) == 1:
                unique, unique_counts = _np.unique(
                    selected[0], return_counts=True
                )
                for value, count in zip(
                    unique.tolist(), unique_counts.tolist()
                ):
                    counts[key + (_as_int(value),)] = count
            else:
                local: dict[tuple, int] = {}
                for sample_values in zip(*(c.tolist() for c in selected)):
                    row_key = key + tuple(_as_int(v) for v in sample_values)
                    local[row_key] = local.get(row_key, 0) + 1
                counts.update(local)
        names = list(query.groupby) + [s.output for s in query.aggregations]
        return "counts", names, (counts, query.groupby)

    def _aggregate_column(self, spec, index, members, matrix):
        """Per-sample aggregate values of one group as a numpy array."""
        monoid = spec.monoid
        if isinstance(monoid, CountMonoid):
            return matrix.sum(axis=0)
        values = [row_values[index] for row_values, _ in members]
        if not all(isinstance(v, (int, float)) for v in values):
            raise _Fallback
        array = _np.asarray(values, dtype=float)
        if isinstance(monoid, SumMonoid):
            # Summation order differs from the per-world fold, so float
            # inputs could produce answer keys differing in the last ulp
            # from the exact engines'.  Integer sums within float64's
            # exact range are order-independent; anything else falls back.
            if not all(type(v) is int for v in values):
                raise _Fallback
            if sum(abs(v) for v in values) > 2**52:
                raise _Fallback
            totals = array @ matrix
            if isinstance(monoid, CappedSumMonoid):
                # A saturating fold over non-negative values equals the
                # capped total; negative values would make the fold
                # order-dependent, so they take the generic path.
                if any(v < 0 for v in values):
                    raise _Fallback
                return _np.minimum(totals, monoid.cap)
            return totals
        if isinstance(monoid, (MinMonoid, MaxMonoid)):
            # Selection never creates values, but the float64 cast does:
            # ints beyond 2**53 would round and fabricate answer keys.
            if any(type(v) is int and abs(v) > 2**53 for v in values):
                raise _Fallback
            if isinstance(monoid, MinMonoid):
                filled = _np.where(matrix, array[:, None], math.inf)
                return filled.min(axis=0, initial=math.inf)
            filled = _np.where(matrix, array[:, None], -math.inf)
            return filled.max(axis=0, initial=-math.inf)
        raise _Fallback  # PROD and custom monoids: generic path


def _evaluate_shard(context, payload):
    """Process-pool task: draw and evaluate one shard of sampled worlds.

    ``context`` is shared by every shard of a round (inherited by forked
    workers, never pickled per task); the payload is just the shard's
    ``(seed, size)``.  The shard draws from its own spawned streams — a
    ``numpy.random.SeedSequence``-seeded ``Generator`` on the numpy path,
    a private ``random.Random`` otherwise — so its columns are a pure
    function of the seed, independent of which process evaluates it.

    Returns ``(counts, batched, distinct_worlds, codegen_used)``.
    """
    db, query, referenced, names, codegen, prepared = context
    seed, size = payload
    engine = MonteCarloEngine(db, codegen=codegen)
    np_rng = None
    if _np is not None and kernels.numpy_enabled():
        np_rng = _np.random.default_rng(_np.random.SeedSequence(seed))
    drawn = engine._sample_index_columns(
        list(names), size, rng=random.Random(seed), np_rng=np_rng
    )
    counts, batched = engine._evaluate_drawn(
        query, list(referenced), drawn, size, prepared=prepared
    )
    return (
        counts,
        batched,
        engine.last_run_info.get("distinct_worlds", 0),
        engine.last_run_info.get("codegen_used", False),
    )


def _as_int(value):
    """Match the dict path's Python value types for aggregate results."""
    if isinstance(value, float) and value.is_integer():
        return int(value)
    if isinstance(value, _np.integer if _np is not None else int):
        return int(value)
    return value
