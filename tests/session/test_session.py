"""The unified Session facade: connect, tables, engines, caching, seeds."""

import pytest

from repro import (
    NATURALS,
    AggSpec,
    GroupAgg,
    PVCDatabase,
    QueryResult,
    SproutEngine,
    Var,
    VariableRegistry,
    cmp_,
    connect,
    count_,
    lit,
    min_,
    relation,
    sum_,
)
from repro.errors import (
    DistributionError,
    QueryValidationError,
    SchemaError,
)


@pytest.fixture
def shop_session():
    s = connect(seed=11)
    items = s.table("items", ["name", "category", "price"])
    for name, category, price, p in [
        ("inkjet", "printer", 100, 0.8),
        ("laser", "printer", 250, 0.5),
        ("ultrabook", "laptop", 900, 0.6),
        ("netbook", "laptop", 1400, 0.3),
    ]:
        items.insert((name, category, price), p=p)
    return s


def affordable(s):
    return (
        s.table("items")
        .group_by("category")
        .agg(cheapest=min_("price"))
        .where(cmp_("cheapest", "<=", lit(300)))
        .select("category")
    )


class TestTables:
    def test_insert_mints_bernoulli_variables(self, shop_session):
        table = shop_session.db["items"]
        assert len(table) == 4
        assert all(isinstance(row.annotation, Var) for row in table)
        assert len(shop_session.registry) == 4
        assert shop_session.registry["items_0"][True] == pytest.approx(0.8)

    def test_certain_and_explicit_rows(self):
        s = connect()
        t = s.table("t", ["a"])
        t.insert((1,))  # certain
        t.insert((2,), p=1.0)  # also certain
        t.insert((3,), annotation=Var("shared"))
        s.registry.bernoulli("shared", 0.5)
        annotations = [repr(r.annotation) for r in s.db["t"]]
        assert annotations == ["1", "1", "shared"]
        assert len(s.registry) == 1

    def test_insert_rejects_bad_probability(self):
        s = connect()
        t = s.table("t", ["a"])
        with pytest.raises(DistributionError):
            t.insert((1,), p=-0.2)
        with pytest.raises(DistributionError):
            t.insert((1,), p=1.5)
        with pytest.raises(DistributionError):
            t.insert((1,), p=0.5, annotation=Var("x"))

    def test_insert_dict_rows(self):
        s = connect()
        t = s.table("t", ["a", "b"])
        t.insert({"b": 2, "a": 1}, p=0.5)
        assert s.db["t"].rows[0].values == (1, 2)
        with pytest.raises(SchemaError):
            t.insert({"a": 1, "c": 3})

    def test_named_variables_and_freshness(self):
        s = connect()
        t = s.table("t", ["a"])
        t.insert((1,), p=0.3, var="x1")
        t.insert((2,), p=0.4)
        names = {repr(r.annotation) for r in s.db["t"]}
        assert "x1" in names and len(names) == 2

    def test_table_requires_existing_without_columns(self):
        s = connect()
        with pytest.raises(SchemaError):
            s.table("missing")

    def test_table_redefinition_must_match(self):
        s = connect()
        s.table("t", ["a", "b"])
        assert len(s.table("t", ["a", "b"])) == 0  # idempotent
        with pytest.raises(SchemaError):
            s.table("t", ["a", "c"])

    def test_insert_block_needs_summing_probabilities(self):
        s = connect(semiring=NATURALS)
        t = s.table("t", ["a"])
        with pytest.raises(DistributionError):
            t.insert_block([((1,), 0.7), ((2,), 0.6)])
        t.insert_block([((1,), 0.5), ((2,), 0.3)])
        assert len(t) == 2


class TestRun:
    def test_run_returns_query_result(self, shop_session):
        result = affordable(shop_session).run(engine="sprout")
        assert isinstance(result, QueryResult)
        assert result.engine == "sprout"
        assert result.tuple_probabilities()[("printer",)] == pytest.approx(0.9)

    def test_run_accepts_ast_builder_and_sql(self, shop_session):
        s = shop_session
        query = GroupAgg(relation("items"), [], [AggSpec.of("n", "COUNT")])
        from_ast = s.run(query, engine="sprout")
        from_builder = s.table("items").agg(n=count_()).run(engine="sprout")
        from_sql = s.run("SELECT COUNT(*) AS n FROM items", engine="sprout")
        for result in (from_builder, from_sql):
            assert result.tuple_probabilities() == from_ast.tuple_probabilities()

    def test_unknown_engine_rejected(self, shop_session):
        with pytest.raises(QueryValidationError):
            shop_session.run(affordable(shop_session), engine="postgres")
        with pytest.raises(QueryValidationError):
            connect(engine="postgres")

    def test_auto_picks_sprout_for_tractable(self, shop_session):
        result = affordable(shop_session).run(engine="auto")
        assert result.engine == "sprout"
        assert shop_session.classify(affordable(shop_session)).tractable

    def test_auto_tolerates_certain_rows(self):
        # A certain row is trivially tuple-independent (variable-free
        # annotation); it must not downgrade the table to Monte-Carlo.
        s = connect()
        t = s.table("t", ["a"])
        t.insert((1,), p=0.5)
        t.insert((2,))
        result = s.table("t").select("a").run(engine="auto")
        assert result.engine == "sprout"

    def test_auto_degrades_to_guaranteed_approximation(self, shop_session):
        # Hard queries no longer warn and fall back to an unqualified
        # sample estimate: auto answers them with deterministic interval
        # bounds whose widths meet the (default) ε.
        import warnings

        sql = "SELECT name FROM items WHERE price <= (SELECT MIN(price) FROM items)"
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            result = shop_session.sql(sql)
        assert result.engine == "approx"
        assert result.stats["converged"]
        exact = shop_session.sql(sql, engine="naive").tuple_probabilities()
        for row in result:
            interval = row.probability()
            assert interval.width <= 0.05 + 1e-9
            assert interval.contains(exact.get(row.values, 0.0))

    def test_auto_sample_spec_selects_montecarlo(self, shop_session):
        sql = "SELECT name FROM items WHERE price <= (SELECT MIN(price) FROM items)"
        result = shop_session.sql(sql, mode="sample", epsilon=0.2, delta=0.2)
        assert result.engine == "montecarlo"
        assert result.stats["converged"]
        assert all(row.probability().width <= 0.2 for row in result)

    def test_samples_budget_under_auto(self, shop_session):
        # The legacy fixed budget is harmlessly unused when auto resolves
        # to an exact or bounds-based engine, and rejected only when an
        # exact engine is chosen explicitly.
        easy = affordable(shop_session).run(engine="auto", samples=50)
        assert easy.engine == "sprout"
        sql = "SELECT name FROM items WHERE price <= (SELECT MIN(price) FROM items)"
        hard = shop_session.sql(sql, samples=50)
        assert hard.engine == "approx"
        with pytest.raises(QueryValidationError, match="sample budget"):
            affordable(shop_session).run(engine="sprout", samples=50)

    def test_tuple_independent_cache_invalidates_on_insert(self, shop_session):
        s = shop_session
        assert s.tuple_independent_relations() == {"items"}
        assert s.tuple_independent_relations() == {"items"}  # cached path
        s.table("other", ["a"]).insert((1,), p=0.5)
        assert s.tuple_independent_relations() == {"items", "other"}

    def test_old_engine_api_unchanged(self, shop_session):
        query = affordable(shop_session).build()
        old = SproutEngine(shop_session.db).run(query)
        new = shop_session.run(query, engine="sprout")
        assert old.tuple_probabilities() == pytest.approx(
            new.tuple_probabilities()
        )

    def test_adopted_database_semiring_conflict_rejected(self):
        from repro import NATURALS

        db = PVCDatabase()  # BOOLEAN
        with pytest.raises(QueryValidationError, match="semiring"):
            connect(database=db, semiring=NATURALS)

    def test_session_adopts_existing_database(self):
        reg = VariableRegistry()
        db = PVCDatabase(registry=reg)
        t = db.create_table("t", ["a"])
        reg.bernoulli("x", 0.25)
        t.add((1,), Var("x"))
        s = connect(database=db)
        result = s.run(s.table("t").select("a"), engine="sprout")
        assert result.tuple_probabilities()[(1,)] == pytest.approx(0.25)


class TestCache:
    def test_repeated_runs_hit_the_session_cache(self, shop_session):
        query = affordable(shop_session)
        query.run(engine="sprout")
        misses = shop_session.cache.misses
        assert misses > 0 and shop_session.cache.hits == 0
        query.run(engine="sprout")
        assert shop_session.cache.misses == misses
        assert shop_session.cache.hits == misses

    def test_expression_probability_through_cache(self):
        s = connect()
        s.registry.bernoulli("x", 0.3)
        s.registry.bernoulli("y", 0.5)
        expr = Var("x") + Var("y")
        assert s.probability(expr) == pytest.approx(1 - 0.7 * 0.5)
        assert s.distribution(expr)[False] == pytest.approx(0.7 * 0.5)
        assert s.cache.hits >= 1  # second call reused the first compilation


class TestSeedDeterminism:
    def test_montecarlo_reproducible_from_connect_seed(self, shop_session):
        query = affordable(shop_session).build()

        def sampled():
            s = connect(seed=99)
            items = s.table("items", ["name", "category", "price"])
            for row in shop_session.db["items"]:
                items.insert(row.values, p=0.5)
            return s.run(query, engine="montecarlo", samples=200).tuple_probabilities()

        assert sampled() == sampled()

    def test_workload_reproducible_from_connect_seed(self):
        from repro.workloads.random_expr import ExprParams

        params = ExprParams(left_terms=3, variables=4, clauses=1, literals=2)
        expr_a, reg_a = connect(seed=5).workload(params)
        expr_b, reg_b = connect(seed=5).workload(params)
        expr_c, _ = connect(seed=6).workload(params)
        assert repr(expr_a) == repr(expr_b)
        assert {n: reg_a[n][True] for n in reg_a.names()} == {
            n: reg_b[n][True] for n in reg_b.names()
        }
        assert repr(expr_a) != repr(expr_c)


class TestContextManager:
    def test_with_statement_returns_the_session(self):
        with connect() as s:
            t = s.table("items", ["name"])
            t.insert(("inkjet",), p=0.5)
            result = s.run("SELECT name FROM items")
            assert result.rows[0].probability() == pytest.approx(0.5)
        # Still usable afterwards; the caches were simply cleared.
        assert len(s.cache) == 0
        assert s.run("SELECT name FROM items").rows[0].probability() == (
            pytest.approx(0.5)
        )

    def test_close_clears_compilation_cache_and_adapters(self, shop_session):
        s = shop_session
        affordable(s).run(engine="sprout")
        assert len(s.cache) > 0
        adapter = s.engine("sprout")
        s.close()
        assert len(s.cache) == 0
        assert s.engine("sprout") is not adapter
        assert s.compiler is s.cache.compiler

    def test_exceptions_propagate(self):
        with pytest.raises(RuntimeError):
            with connect() as s:
                raise RuntimeError("boom")


class TestRunIterAndStats:
    def test_stats_unified_across_engines(self, shop_session):
        query = affordable(shop_session)
        for engine in ("sprout", "naive", "montecarlo"):
            stats = query.run(engine=engine).stats
            assert stats["wall_seconds"] >= 0
            assert stats["rows"] == len(query.run(engine=engine).rows)
        mc = query.run(engine="montecarlo").stats
        assert "samples" in mc and "batched" in mc
        sprout = query.run(engine="sprout").stats
        assert "cache_hits" in sprout and "cache_misses" in sprout

    def test_run_iter_exact_engine_yields_once(self, shop_session):
        snapshots = list(shop_session.run_iter(affordable(shop_session)))
        assert len(snapshots) == 1
        assert snapshots[0].engine == "sprout"

    def test_run_iter_default_spec_for_refining_engines(self, shop_session):
        sql = "SELECT name FROM items WHERE price <= (SELECT MIN(price) FROM items)"
        snapshots = list(shop_session.run_iter(sql, engine="montecarlo"))
        assert snapshots[-1].engine == "montecarlo"
        assert snapshots[-1].stats["converged"]
        widths = [
            max((row.probability().width for row in snap), default=0.0)
            for snap in snapshots
        ]
        assert widths == sorted(widths, reverse=True)

    def test_spec_travels_through_sql(self, shop_session):
        sql = "SELECT name FROM items WHERE price <= (SELECT MIN(price) FROM items)"
        result = shop_session.sql(sql, mode="approx", epsilon=0.2)
        assert result.engine == "approx"
        assert result.stats["epsilon"] == 0.2

    def test_exact_engines_reject_non_exact_specs(self, shop_session):
        with pytest.raises(QueryValidationError, match="exact"):
            affordable(shop_session).run(engine="sprout", mode="approx")
        with pytest.raises(QueryValidationError, match="exact"):
            affordable(shop_session).run(engine="naive", mode="sample")

    def test_spec_fields_respect_the_session_default_engine(self):
        # epsilon= without mode= must imply the mode of the *resolved*
        # engine, not just an explicitly passed engine= argument.
        def shop(engine):
            s = connect(seed=4, engine=engine)
            t = s.table("items", ["name"])
            t.insert(("inkjet",), p=0.5).insert(("laser",), p=0.4)
            return s

        approx = shop("approx").run("SELECT name FROM items", epsilon=0.25)
        assert approx.engine == "approx"
        assert approx.stats["epsilon"] == 0.25
        sampled = shop("montecarlo").run("SELECT name FROM items", epsilon=0.25)
        assert sampled.engine == "montecarlo"
        assert sampled.stats["converged"]
