"""Deprecated compatibility shim: the logical rewrites moved to
:mod:`repro.query.optimizer`, which organises them as a rule registry
applied to a fixpoint (with an inspectable trace, see ``Session.explain``),
and the physical planning layer lives in :mod:`repro.query.physical`.

This module re-exports the historical names but emits a
:class:`DeprecationWarning` on first access of each; import from
:mod:`repro.query.optimizer` (rules) / :mod:`repro.query.physical`
(plans) instead.
"""

from __future__ import annotations

import warnings

from repro.query import optimizer as _optimizer

__all__ = [
    "optimize",
    "merge_selections",
    "collapse_projections",
    "pushdown_projections",
    "pushdown_selections",
]


def __getattr__(name: str):
    if name in __all__:
        warnings.warn(
            f"repro.query.plan.{name} is deprecated; import it from "
            f"repro.query.optimizer (physical planning now lives in "
            f"repro.query.physical)",
            DeprecationWarning,
            stacklevel=2,
        )
        return getattr(_optimizer, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def __dir__():
    return sorted(__all__)
