"""Tests for the mini SQL front-end."""

import pytest

from repro.db.schema import Schema
from repro.errors import ParseError
from repro.query.ast import GroupAgg, Product, Project, Select
from repro.query.sql import parse_sql
from repro.query.validate import validate_query

CATALOG = {
    "R": Schema(["a", "b", "c"]),
    "S": Schema(["d", "e"]),
}


class TestBasicSelect:
    def test_projection(self):
        query = parse_sql("SELECT a, b FROM R")
        assert isinstance(query, Project)
        assert query.attributes == ("a", "b")

    def test_where(self):
        query = parse_sql("SELECT a FROM R WHERE b = 5")
        assert isinstance(query.child, Select)

    def test_string_literal(self):
        query = parse_sql("SELECT a FROM R WHERE b = 'M&S x'")
        atom = query.child.predicate.atoms()[0]
        assert atom.right.value == "M&S x"

    def test_join(self):
        query = parse_sql("SELECT a FROM R, S WHERE b = d")
        assert isinstance(query.child.child, Product)
        validate_query(query, CATALOG)

    def test_multiple_conditions(self):
        query = parse_sql("SELECT a FROM R WHERE b = 5 AND c <= 10")
        assert len(query.child.predicate.atoms()) == 2

    def test_keywords_case_insensitive(self):
        query = parse_sql("select a from R where b = 5")
        assert isinstance(query, Project)


class TestAggregates:
    def test_group_by(self):
        query = parse_sql("SELECT a, SUM(b) AS total FROM R GROUP BY a")
        assert isinstance(query, GroupAgg)
        assert query.groupby == ("a",)
        assert query.aggregations[0].output == "total"
        assert query.aggregations[0].monoid.name == "SUM"

    def test_implicit_group_by(self):
        query = parse_sql("SELECT a, MAX(b) AS m FROM R")
        assert query.groupby == ("a",)

    def test_count_star(self):
        query = parse_sql("SELECT a, COUNT(*) AS n FROM R GROUP BY a")
        assert query.aggregations[0].attribute is None

    def test_global_aggregate(self):
        query = parse_sql("SELECT MIN(b) AS m FROM R")
        assert isinstance(query, GroupAgg)
        assert query.groupby == ()

    def test_default_output_name(self):
        query = parse_sql("SELECT MIN(b) FROM R")
        assert query.aggregations[0].output == "min_b"

    def test_group_by_mismatch_rejected(self):
        with pytest.raises(ParseError, match="must match"):
            parse_sql("SELECT a, SUM(b) AS t FROM R GROUP BY c")

    def test_group_by_without_aggregate_rejected(self):
        with pytest.raises(ParseError, match="without aggregates"):
            parse_sql("SELECT a FROM R GROUP BY a")


class TestScalarSubqueries:
    def test_example_3_shape(self):
        # SELECT A FROM R WHERE B = (SELECT MIN(C) FROM S)
        query = parse_sql("SELECT a FROM R WHERE b = (SELECT MIN(d) FROM S)")
        assert isinstance(query, Project)
        select = query.child
        assert isinstance(select, Select)
        assert isinstance(select.child, Product)
        inner = select.child.right
        assert isinstance(inner, GroupAgg)
        assert inner.groupby == ()

    def test_subquery_comparison_operator_preserved(self):
        query = parse_sql("SELECT a FROM R WHERE b <= (SELECT MAX(d) FROM S)")
        atom = query.child.predicate.atoms()[-1]
        assert atom.op.symbol == "<="

    def test_grouped_subquery_rejected(self):
        with pytest.raises(ParseError, match="ungrouped"):
            parse_sql(
                "SELECT a FROM R WHERE b = "
                "(SELECT d, MIN(e) AS m FROM S GROUP BY d)"
            )


class TestErrors:
    def test_trailing_tokens(self):
        with pytest.raises(ParseError, match="trailing"):
            parse_sql("SELECT a FROM R extra")

    def test_missing_from(self):
        with pytest.raises(ParseError):
            parse_sql("SELECT a")

    def test_plain_alias_rejected(self):
        with pytest.raises(ParseError, match="aliasing"):
            parse_sql("SELECT a AS x FROM R")

    def test_garbage_rejected(self):
        with pytest.raises(ParseError):
            parse_sql("SELECT a FROM R WHERE b ~ 5")
