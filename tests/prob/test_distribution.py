"""Unit tests for finite discrete distributions."""

import math

import pytest

from repro.errors import DistributionError
from repro.prob.distribution import Distribution


class TestConstruction:
    def test_from_mapping(self):
        d = Distribution({True: 0.3, False: 0.7})
        assert d[True] == pytest.approx(0.3)

    def test_from_pairs(self):
        d = Distribution([(1, 0.5), (2, 0.5)])
        assert d.support() == {1, 2}

    def test_duplicate_values_accumulate(self):
        d = Distribution([(1, 0.25), (1, 0.25), (2, 0.5)])
        assert d[1] == pytest.approx(0.5)

    def test_zero_probabilities_dropped(self):
        d = Distribution({1: 1.0, 2: 0.0})
        assert d.support() == {1}
        assert len(d) == 1

    def test_negative_probability_rejected(self):
        with pytest.raises(DistributionError, match="negative"):
            Distribution({1: -0.1, 2: 1.1})

    def test_mass_above_one_rejected(self):
        with pytest.raises(DistributionError, match="exceeds"):
            Distribution({1: 0.9, 2: 0.9})

    def test_empty_support_rejected(self):
        with pytest.raises(DistributionError, match="empty"):
            Distribution({})

    def test_point(self):
        d = Distribution.point("value")
        assert d["value"] == 1.0
        assert len(d) == 1

    def test_bernoulli(self):
        d = Distribution.bernoulli(0.3)
        assert d[True] == pytest.approx(0.3)
        assert d[False] == pytest.approx(0.7)

    def test_bernoulli_degenerate(self):
        assert Distribution.bernoulli(1.0).support() == {True}
        assert Distribution.bernoulli(0.0).support() == {False}

    def test_bernoulli_custom_values(self):
        d = Distribution.bernoulli(0.4, one=1, zero=0)
        assert d.support() == {0, 1}

    def test_bernoulli_out_of_range(self):
        with pytest.raises(DistributionError):
            Distribution.bernoulli(1.5)

    def test_uniform(self):
        d = Distribution.uniform([1, 2, 3, 4])
        assert d[2] == pytest.approx(0.25)

    def test_uniform_dedupes(self):
        d = Distribution.uniform([1, 1, 2])
        assert d[1] == pytest.approx(0.5)

    def test_infinity_is_a_valid_value(self):
        d = Distribution({math.inf: 0.5, 10: 0.5})
        assert d[math.inf] == pytest.approx(0.5)


class TestOperations:
    def test_map_pushforward(self):
        d = Distribution({1: 0.4, 2: 0.6})
        doubled = d.map(lambda v: 2 * v)
        assert doubled[2] == pytest.approx(0.4)
        assert doubled[4] == pytest.approx(0.6)

    def test_map_merges_collisions(self):
        d = Distribution({-1: 0.3, 1: 0.7})
        squared = d.map(abs)
        assert squared[1] == pytest.approx(1.0)

    def test_convolve_sum_of_dice(self):
        die = Distribution.uniform(range(1, 7))
        total = die.convolve(die, lambda a, b: a + b)
        assert total[7] == pytest.approx(6 / 36)
        assert total[2] == pytest.approx(1 / 36)

    def test_convolve_cost_is_support_product(self):
        d1 = Distribution.uniform(range(5))
        d2 = Distribution.uniform(range(7))
        result = d1.convolve(d2, lambda a, b: (a, b))
        assert len(result) == 35

    def test_mixture(self):
        d1 = Distribution.point(1)
        d2 = Distribution.point(2)
        mixed = Distribution.mixture([(0.3, d1), (0.7, d2)])
        assert mixed[1] == pytest.approx(0.3)
        assert mixed[2] == pytest.approx(0.7)

    def test_mixture_skips_zero_weights(self):
        mixed = Distribution.mixture(
            [(0.0, Distribution.point(1)), (1.0, Distribution.point(2))]
        )
        assert mixed.support() == {2}

    def test_expectation(self):
        d = Distribution({0: 0.5, 10: 0.5})
        assert d.expectation() == pytest.approx(5.0)

    def test_probability_of_predicate(self):
        d = Distribution({1: 0.2, 2: 0.3, 3: 0.5})
        assert d.probability_of(lambda v: v >= 2) == pytest.approx(0.8)

    def test_total(self):
        d = Distribution({1: 0.4, 2: 0.6})
        assert d.total() == pytest.approx(1.0)


class TestComparison:
    def test_almost_equals(self):
        d1 = Distribution({1: 0.5, 2: 0.5})
        d2 = Distribution({1: 0.5 + 1e-10, 2: 0.5 - 1e-10})
        assert d1.almost_equals(d2)

    def test_equality_operator(self):
        assert Distribution({1: 1.0}) == Distribution({1: 1.0})
        assert Distribution({1: 1.0}) != Distribution({2: 1.0})

    def test_not_hashable(self):
        with pytest.raises(TypeError):
            hash(Distribution({1: 1.0}))

    def test_repr_is_deterministic(self):
        d1 = Distribution({2: 0.5, 1: 0.5})
        d2 = Distribution({1: 0.5, 2: 0.5})
        assert repr(d1) == repr(d2)
