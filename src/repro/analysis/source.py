"""Source-file model shared by every checker.

A :class:`SourceModule` owns the parsed AST, the raw lines, and the
inline suppressions of one Python file.  Suppressions use the comment
form

``# repro: allow(rule-id)`` or ``# repro: allow(rule-a, rule-b)``

on the offending line or on the line directly above it (for statements
whose expression spans several physical lines, the *first* physical line
of the statement is the anchor — that is where ``ast`` reports the
violation).  Every suppression must earn its keep: the runner reports a
``suppression-unused`` finding for any ``allow`` comment that silenced
nothing, so stale suppressions cannot accumulate.
"""

from __future__ import annotations

import ast
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator

from repro.analysis.findings import Finding

__all__ = ["Suppression", "SourceModule", "collect_modules", "iter_python_files"]

_ALLOW_RE = re.compile(r"#\s*repro:\s*allow\(\s*([A-Za-z0-9_,\s-]+?)\s*\)")


@dataclass
class Suppression:
    """One ``# repro: allow(...)`` comment: its line and its rules."""

    line: int
    rules: tuple[str, ...]
    used: bool = False

    def covers(self, finding: Finding) -> bool:
        return finding.rule_id in self.rules and finding.line in (
            self.line,
            self.line + 1,
        )


@dataclass
class SourceModule:
    """One parsed Python file plus its suppression comments."""

    path: str
    text: str
    tree: ast.Module
    suppressions: list[Suppression] = field(default_factory=list)

    @classmethod
    def parse(cls, path: str | Path, text: str | None = None) -> "SourceModule":
        path = str(path)
        if text is None:
            text = Path(path).read_text(encoding="utf-8")
        tree = ast.parse(text, filename=path)
        return cls(path, text, tree, _collect_suppressions(text))

    def suppressed(self, finding: Finding) -> bool:
        """Whether an inline allow covers ``finding`` (marks it used)."""
        hit = False
        for suppression in self.suppressions:
            if suppression.covers(finding):
                suppression.used = True
                hit = True
        return hit

    def unused_suppressions(self) -> Iterator[Finding]:
        for suppression in self.suppressions:
            if not suppression.used:
                yield Finding(
                    file=self.path,
                    line=suppression.line,
                    rule_id="suppression-unused",
                    severity="warning",
                    message=(
                        "suppression allows "
                        f"({', '.join(suppression.rules)}) but no such "
                        "finding was reported here; delete it"
                    ),
                )


def _collect_suppressions(text: str) -> list[Suppression]:
    """All ``# repro: allow(...)`` comments, via the tokenizer.

    Tokenizing (rather than regexing raw lines) keeps suppression
    markers inside string literals from being honoured — a checker
    fixture quoting the comment form must not silence real findings.
    """
    suppressions: list[Suppression] = []
    lines = iter(text.splitlines(keepends=True))
    try:
        for token in tokenize.generate_tokens(lambda: next(lines, "")):
            if token.type != tokenize.COMMENT:
                continue
            match = _ALLOW_RE.search(token.string)
            if match is None:
                continue
            rules = tuple(
                rule.strip()
                for rule in match.group(1).split(",")
                if rule.strip()
            )
            if rules:
                suppressions.append(Suppression(token.start[0], rules))
    except tokenize.TokenError:
        # Unterminated constructs: fall back to no suppressions; the
        # file failed to parse anyway and is reported as such.
        return []
    return suppressions


def iter_python_files(paths: Iterable[str | Path]) -> Iterator[Path]:
    """Expand files/directories into a sorted stream of ``*.py`` files."""
    seen: set[Path] = set()
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            candidates: Iterable[Path] = sorted(path.rglob("*.py"))
        else:
            candidates = [path]
        for candidate in candidates:
            if "__pycache__" in candidate.parts:
                continue
            resolved = candidate.resolve()
            if resolved not in seen:
                seen.add(resolved)
                yield candidate


def collect_modules(
    paths: Iterable[str | Path],
) -> tuple[list[SourceModule], list[Finding]]:
    """Parse every Python file under ``paths``.

    Unparseable files become ``parse-error`` findings instead of
    aborting the run — the rest of the tree still gets checked.
    """
    modules: list[SourceModule] = []
    findings: list[Finding] = []
    for path in iter_python_files(paths):
        try:
            modules.append(SourceModule.parse(path))
        except (SyntaxError, UnicodeDecodeError, OSError) as exc:
            line = getattr(exc, "lineno", None) or 1
            findings.append(
                Finding(
                    file=str(path),
                    line=line,
                    rule_id="parse-error",
                    severity="error",
                    message=f"cannot analyse file: {exc}",
                )
            )
    return modules, findings
