"""The async multi-tenant query server.

One :class:`QueryServer` fronts one shared (and, since the mutable-table
work, *writable*) :class:`~repro.db.pvc_table.PVCDatabase` for many
tenants:

* **Per-tenant sessions over shared base data.**  Each tenant name maps
  to its own :class:`~repro.session.Session` (engine adapters, Monte-
  Carlo RNG state), all opened over the *same* database, the same
  server-wide :class:`~repro.engine.base.CompilationCache` and the same
  :class:`~repro.engine.base.PlanCache` — so one tenant's compile work
  is every tenant's cache hit.
* **A shared prepared-statement cache** keyed on normalised query text
  (:mod:`repro.server.statements`): a repeated statement skips parsing,
  planning *and* d-tree compilation entirely.
* **Bounded admission with load-shedding to anytime answers.**  Past
  ``soft_limit`` concurrent requests the server rewrites incoming
  evaluation specs to budgeted anytime mode (PR 4's ``EvalSpec``):
  answers come back as *sound* probability intervals computed under a
  strict budget/time cap instead of queueing unboundedly.  Past
  ``hard_limit`` requests are shed with a structured overload error
  (HTTP 503 + ``Retry-After``).
* **A non-blocking event loop.**  Compile/evaluate work runs via
  ``loop.run_in_executor`` on a thread pool; within a tenant, requests
  serialise on a per-tenant lock (sessions hold engine state), while
  different tenants execute concurrently — and can fan out to the
  :mod:`repro.parallel` process pool via the usual ``workers`` spec
  field.

* **Serialised writes with lineage-scoped invalidation.**  ``POST
  /mutate`` (or the TCP ``mutate`` op) inserts, updates or deletes rows
  of the shared database.  Writes serialise on one mutation lock; the
  shared distribution cache is subscribed to the database's delta feed
  and drops exactly the entries whose variables a mutation re-weighted,
  while prepared plans and compiled kernels self-invalidate via epoch
  fingerprints — every tenant's next answer reflects the new
  generation, and nothing that did not change recompiles.

The wire protocols live in :mod:`repro.server.http` (JSON over HTTP:
``POST /query``, ``POST /mutate``, ``GET /stats``, ``GET /healthz``)
and :mod:`repro.server.tcp` (line-delimited JSON with streaming
``run_iter`` interval snapshots).
"""

from __future__ import annotations

import asyncio
import functools
import queue as queue_module
import threading
import time
from collections import OrderedDict
from concurrent.futures import ThreadPoolExecutor
from dataclasses import asdict, dataclass, replace

from repro.core.compile import Compiler
from repro.db.pvc_table import PVCDatabase
from repro.engine.base import CompilationCache, ENGINE_NAMES, PlanCache
from repro.errors import QueryValidationError, ReproError
from repro.server import http as http_protocol
from repro.server import tcp as tcp_protocol
from repro.server.codec import jsonable, result_to_json
from repro.server.statements import StatementCache
from repro.session import Session

__all__ = [
    "ServerConfig",
    "QueryServer",
    "ProtocolError",
    "ServerOverloadedError",
]

#: EvalSpec fields accepted in a request's "spec" object.
_SPEC_FIELDS = (
    "mode", "epsilon", "delta", "budget", "time_limit", "workers",
    "on_timeout",
)


class ProtocolError(ReproError):
    """A request violates the wire protocol (malformed envelope)."""


class ServerOverloadedError(ReproError):
    """The hard admission limit tripped; retry after ``retry_after``."""

    def __init__(self, retry_after: float):
        super().__init__(
            f"server overloaded; retry after {retry_after:g} seconds"
        )
        self.retry_after = retry_after


@dataclass(frozen=True)
class ServerConfig:
    """Tunables of a :class:`QueryServer` (all have serving defaults).

    ``soft_limit``/``hard_limit`` bound concurrent admitted requests:
    at ``soft_limit`` new requests degrade to budgeted anytime specs
    (``shed_epsilon``/``shed_budget``/``shed_time_limit``), at
    ``hard_limit`` they are shed with ``retry_after``.  ``max_tenants``
    bounds per-tenant server state (sessions and locks are keyed on
    client-supplied tenant names): past it the least-recently-used
    *idle* tenant is evicted, and when every tenant is busy the request
    is shed like a hard-limit trip.  ``tcp_port``
    ``None`` means "next port after ``port``" (or another ephemeral port
    when ``port`` is 0).  ``threads`` sizes the executor pool the event
    loop offloads blocking compile/eval work to; ``eval_workers``
    optionally forces the :mod:`repro.parallel` process-pool ``workers``
    spec field on every request that does not set its own.
    ``drain_timeout`` bounds graceful shutdown: :meth:`QueryServer.stop`
    sheds new arrivals (503 + ``Retry-After``) and waits up to this many
    seconds for in-flight requests to finish before abandoning them.
    """

    host: str = "127.0.0.1"
    port: int = 8642
    tcp_port: int | None = None
    threads: int = 4
    statement_cache_size: int | None = 256
    plan_cache_size: int | None = 256
    distribution_cache_size: int | None = 4096
    soft_limit: int = 8
    hard_limit: int = 32
    max_tenants: int = 64
    shed_epsilon: float = 0.05
    shed_budget: int = 2048
    shed_time_limit: float = 0.25
    retry_after: float = 1.0
    drain_timeout: float = 5.0
    default_engine: str = "auto"
    seed: int | None = None
    samples: int = 1000
    eval_workers: int | str | None = None

    def __post_init__(self):
        if self.threads < 1:
            raise QueryValidationError(
                f"threads must be >= 1, got {self.threads!r}"
            )
        if self.soft_limit < 0 or self.hard_limit < 0:
            raise QueryValidationError("admission limits must be >= 0")
        if self.soft_limit > self.hard_limit:
            raise QueryValidationError(
                f"soft_limit ({self.soft_limit}) must not exceed "
                f"hard_limit ({self.hard_limit})"
            )
        if self.max_tenants < 1:
            raise QueryValidationError(
                f"max_tenants must be >= 1, got {self.max_tenants!r}"
            )
        if self.shed_epsilon <= 0 or self.shed_budget <= 0:
            raise QueryValidationError(
                "shed_epsilon and shed_budget must be positive"
            )
        if self.shed_time_limit <= 0 or self.retry_after <= 0:
            raise QueryValidationError(
                "shed_time_limit and retry_after must be positive"
            )
        if self.drain_timeout < 0:
            raise QueryValidationError(
                f"drain_timeout must be >= 0, got {self.drain_timeout!r}"
            )


class QueryServer:
    """Serve one shared probabilistic database to many tenants."""

    #: Lock discipline, enforced statically by the ``locks`` checker of
    #: ``repro.analysis``.  ``_counters_lock`` is a leaf lock (it is
    #: taken inside ``_sessions_lock`` by the eviction path, never the
    #: other way around): protocol handlers bump counters from executor
    #: threads while the event loop mutates them too, so every counter
    #: update is a guarded read-modify-write.  Admission state
    #: (``_inflight``/``_draining``) shares the counter lock so
    #: ``_admit`` can check-and-claim a slot atomically.
    _shared_state_ = {
        "_counters_lock": ("_counters", "_inflight", "_draining"),
        "_sessions_lock": ("_sessions", "_tenant_locks", "_tenant_busy"),
    }

    def __init__(self, db: PVCDatabase, config: ServerConfig | None = None, **overrides):
        self.config = replace(config or ServerConfig(), **overrides)
        self.db = db
        #: The three server-wide caches every tenant session shares.
        self.cache = CompilationCache(
            Compiler(db.registry, db.semiring),
            max_entries=self.config.distribution_cache_size,
        )
        self.plans = PlanCache(max_entries=self.config.plan_cache_size)
        self.statements = StatementCache(
            max_entries=self.config.statement_cache_size
        )
        #: Mutations invalidate cache entries by lineage: the cache
        #: subscribes to the database's delta feed up front, before any
        #: tenant session exists.
        self.cache.watch(db)
        self._sessions: OrderedDict[str, Session] = OrderedDict()
        self._sessions_lock = threading.Lock()
        #: Writes serialise on one lock: mutations are rare relative to
        #: queries and each one rewrites table rows + patches caches as
        #: one atomic step (readers are lock-free — they see either the
        #: old or the new row list, never a half-applied write).
        self._mutation_lock = threading.Lock()
        self._tenant_locks: dict[str, asyncio.Lock] = {}
        self._tenant_busy: dict[str, int] = {}
        self._executor: ThreadPoolExecutor | None = None
        self._http_server: asyncio.AbstractServer | None = None
        self._tcp_server: asyncio.AbstractServer | None = None
        self.http_address: tuple[str, int] | None = None
        self.tcp_address: tuple[str, int] | None = None
        self._started_monotonic: float | None = None
        self._counters_lock = threading.Lock()
        self._inflight = 0
        self._draining = False
        self._counters = {
            "requests": 0,
            "completed": 0,
            "degraded": 0,
            "shed": 0,
            "errors": 0,
            "streams": 0,
            "mutations": 0,
            "tenants_evicted": 0,
            "drain_abandoned": 0,
        }

    # -- tenant state ----------------------------------------------------------

    def session(self, tenant: str) -> Session:
        """The (lazily created) session of ``tenant``.

        All tenants share the database, the distribution cache and the
        plan cache; the session carries only the per-tenant engine
        adapters and RNG state.  Tenant state is bounded by
        ``config.max_tenants``: creating one more evicts the least-
        recently-used idle tenant, and raises
        :class:`ServerOverloadedError` when every tenant is busy.
        """
        with self._sessions_lock:
            return self._session_locked(tenant)

    def _count(self, key: str, n: int = 1) -> None:
        """Bump a server counter (``+=`` on a dict entry is a
        read-modify-write, and counters are hit from executor threads)."""
        with self._counters_lock:
            self._counters[key] += n

    def _session_locked(self, tenant: str) -> Session:
        session = self._sessions.get(tenant)
        if session is None:
            if len(self._sessions) >= self.config.max_tenants:
                self._evict_idle_tenant_locked()
            session = Session(
                engine=self.config.default_engine,
                seed=self.config.seed,
                samples=self.config.samples,
                database=self.db,
                cache=self.cache,
                plan_cache=self.plans,
            )
            self._sessions[tenant] = session
            self._tenant_locks[tenant] = asyncio.Lock()
        else:
            self._sessions.move_to_end(tenant)
        return session

    def _evict_idle_tenant_locked(self) -> None:
        """Drop the LRU tenant with no in-flight request.

        Caller holds ``_sessions_lock``; counters take their own leaf
        lock via :meth:`_count` (``_sessions_lock`` alone does not
        protect ``_counters`` — admission paths bump them without it).
        """
        victim = next(
            (name for name in self._sessions if name not in self._tenant_busy),
            None,
        )
        if victim is None:
            self._count("shed")
            raise ServerOverloadedError(self.config.retry_after)
        session = self._sessions.pop(victim)
        # Safe on a shared cache: close() releases only session-owned
        # state (engine adapters, memos); the server-wide distribution
        # and plan caches keep every other tenant's warm entries.
        session.close()
        self._tenant_locks.pop(victim, None)
        self._count("tenants_evicted")

    def _acquire_tenant(self, tenant: str) -> tuple[Session, asyncio.Lock]:
        """Tenant session + lock, refcounted busy until _release_tenant.

        The busy refcount pins the tenant against LRU eviction for the
        whole request — including the time spent *waiting* on the
        tenant lock — so two requests of one tenant can never end up on
        two different ``Session`` objects.
        """
        with self._sessions_lock:
            session = self._session_locked(tenant)
            self._tenant_busy[tenant] = self._tenant_busy.get(tenant, 0) + 1
            return session, self._tenant_locks[tenant]

    def _release_tenant(self, tenant: str) -> None:
        with self._sessions_lock:
            count = self._tenant_busy.get(tenant, 0) - 1
            if count > 0:
                self._tenant_busy[tenant] = count
            else:
                self._tenant_busy.pop(tenant, None)

    # -- request validation ----------------------------------------------------

    def _unpack(self, payload) -> tuple[str, str, str | None, int | None, dict]:
        """Validate a query request envelope; raise ProtocolError early."""
        if not isinstance(payload, dict):
            raise ProtocolError(
                f"request must be a JSON object, got {type(payload).__name__}"
            )
        sql = payload.get("sql")
        if not isinstance(sql, str) or not sql.strip():
            raise ProtocolError("request needs a non-empty 'sql' string")
        tenant = payload.get("tenant", "default")
        if not isinstance(tenant, str) or not tenant or len(tenant) > 200:
            raise ProtocolError(
                "'tenant' must be a non-empty string of at most 200 chars"
            )
        engine = payload.get("engine")
        if engine is not None and (
            not isinstance(engine, str)
            or (engine != "auto" and engine not in ENGINE_NAMES)
        ):
            raise ProtocolError(
                f"unknown engine {engine!r}; expected 'auto' or one of "
                f"{list(ENGINE_NAMES)}"
            )
        samples = payload.get("samples")
        if samples is not None and (
            isinstance(samples, bool) or not isinstance(samples, int)
            or samples <= 0
        ):
            raise ProtocolError("'samples' must be a positive integer")
        spec = payload.get("spec")
        if spec is None:
            fields: dict = {}
        elif isinstance(spec, dict):
            unknown = set(spec) - set(_SPEC_FIELDS)
            if unknown:
                raise ProtocolError(
                    f"unknown EvalSpec fields {sorted(unknown)}"
                )
            fields = {
                key: value for key, value in spec.items() if value is not None
            }
        else:
            raise ProtocolError(
                f"'spec' must be a JSON object of EvalSpec fields, got "
                f"{type(spec).__name__}"
            )
        unknown_keys = set(payload) - {
            "sql", "tenant", "engine", "samples", "spec", "op"
        }
        if unknown_keys:
            raise ProtocolError(
                f"unknown request fields {sorted(unknown_keys)}"
            )
        return sql, tenant, engine, samples, fields

    def _unpack_mutation(self, payload) -> tuple[str, str, dict]:
        """Validate a mutation request envelope; raise ProtocolError early."""
        if not isinstance(payload, dict):
            raise ProtocolError(
                f"request must be a JSON object, got {type(payload).__name__}"
            )
        table = payload.get("table")
        if not isinstance(table, str) or not table:
            raise ProtocolError("mutation needs a non-empty 'table' string")
        action = payload.get("action")
        if action not in ("insert", "update", "delete"):
            raise ProtocolError(
                f"unknown mutation action {action!r}; expected "
                f"'insert', 'update' or 'delete'"
            )
        allowed = {"op", "tenant", "table", "action"}
        if action == "insert":
            allowed |= {"values", "p"}
            if "values" not in payload:
                raise ProtocolError("insert needs a 'values' list or object")
        else:
            where = payload.get("where")
            if not isinstance(where, dict) or not where:
                raise ProtocolError(
                    f"{action} needs a non-empty 'where' object "
                    f"(attribute equality match)"
                )
            allowed |= {"where"}
            if action == "update":
                allowed |= {"set", "p"}
                if payload.get("set") is None and payload.get("p") is None:
                    raise ProtocolError("update needs 'set' and/or 'p'")
        p = payload.get("p")
        if p is not None and (
            isinstance(p, bool) or not isinstance(p, (int, float))
        ):
            raise ProtocolError("'p' must be a number")
        unknown = set(payload) - allowed
        if unknown:
            raise ProtocolError(f"unknown mutation fields {sorted(unknown)}")
        return table, action, payload

    def _apply_mutation(self, table: str, action: str, payload: dict) -> dict:
        """Apply one validated mutation (runs on an executor thread).

        Writes serialise on ``_mutation_lock``; lineage-driven cache
        invalidation runs inside the table/database mutators via the
        delta subscriptions, so by the time the lock drops every shared
        cache is consistent with the new generation.
        """
        with self._mutation_lock:
            if action == "insert":
                values = payload["values"]
                if isinstance(values, list):
                    values = tuple(values)
                self.db.insert(table, values, p=payload.get("p"))
                rows = 1
            elif action == "update":
                rows = self.db.update(
                    table,
                    payload["where"],
                    set_values=payload.get("set"),
                    p=payload.get("p"),
                )
            else:
                rows = self.db.delete(table, payload["where"])
            return {
                "table": table,
                "action": action,
                "rows": rows,
                "db_generation": self.db.generation,
            }

    async def mutate(self, payload) -> dict:
        """The write path shared by ``POST /mutate`` and the TCP op.

        Mutations claim an in-flight slot like queries (a write burst
        counts against the admission limits) but are never degraded —
        load-shedding rewrites *answers* to anytime mode, while a write
        either happens exactly or not at all.
        """
        self._count("requests")
        table, action, fields = self._unpack_mutation(payload)
        tenant = payload.get("tenant", "default")
        if not isinstance(tenant, str) or not tenant or len(tenant) > 200:
            raise ProtocolError(
                "'tenant' must be a non-empty string of at most 200 chars"
            )
        self._admit()  # claims the in-flight slot on success
        try:
            mutation = await self._offload(
                self._apply_mutation, table, action, fields
            )
        finally:
            self._release_slot()
        self._count("completed")
        self._count("mutations")
        return {"mutation": mutation, "tenant": tenant}

    # -- admission control -----------------------------------------------------

    def _admit(self) -> bool:
        """Claim an in-flight slot; True when the request must degrade.

        Check and claim are one atomic step under ``_counters_lock`` —
        a burst of concurrent arrivals each sees the count including the
        slots the others already claimed, so the limits cannot be
        overshot.  Raises when the request must shed instead; on success
        the caller owns one slot and must give it back via
        :meth:`_release_slot` in a ``finally`` covering parsing, lock
        wait and execution.
        """
        with self._counters_lock:
            if self._draining:
                # A draining server finishes what it admitted and sheds
                # the rest — new arrivals get 503 + Retry-After, never a
                # hang.
                self._counters["shed"] += 1
                raise ServerOverloadedError(self.config.retry_after)
            if self._inflight >= self.config.hard_limit:
                self._counters["shed"] += 1
                raise ServerOverloadedError(self.config.retry_after)
            self._inflight += 1
            return self._inflight > self.config.soft_limit

    def _release_slot(self) -> None:
        with self._counters_lock:
            self._inflight -= 1

    def _shed_rewrite(
        self, engine: str | None, samples: int | None, fields: dict
    ) -> tuple[str | None, int | None, dict]:
        """Rewrite a request to budgeted anytime mode under load.

        The rewritten spec always yields *sound* interval answers —
        deterministic ε-bounds (``approx``) or (ε, δ) confidence
        intervals (``sample`` for Monte-Carlo intent) — under a strict
        budget and time cap, so a loaded server degrades answer width,
        never answer correctness, and never queues unboundedly.
        """
        cfg = self.config
        fields = dict(fields)
        mode = fields.get("mode")
        wants_sample = mode == "sample" or (
            mode is None and engine == "montecarlo"
        )
        fields["mode"] = "sample" if wants_sample else "approx"
        fields.setdefault("epsilon", cfg.shed_epsilon)
        budget = fields.get("budget")
        if samples is not None:
            # The legacy fixed Monte-Carlo budget folds into spec.budget.
            budget = samples if budget is None else min(budget, samples)
            samples = None
        fields["budget"] = (
            cfg.shed_budget if budget is None else min(budget, cfg.shed_budget)
        )
        time_limit = fields.get("time_limit")
        fields["time_limit"] = (
            cfg.shed_time_limit
            if time_limit is None
            else min(time_limit, cfg.shed_time_limit)
        )
        if wants_sample:
            engine = "montecarlo" if engine in (None, "montecarlo") else "auto"
        else:
            engine = "approx" if engine in (None, "approx") else "auto"
        return engine, samples, fields

    # -- query execution -------------------------------------------------------

    async def execute(self, payload) -> dict:
        """The one-shot query path shared by the HTTP and TCP protocols."""
        self._count("requests")
        sql, tenant, engine, samples, fields = self._unpack(payload)
        degraded = self._admit()  # claims the in-flight slot on success
        try:
            if degraded:
                self._count("degraded")
                engine, samples, fields = self._shed_rewrite(
                    engine, samples, fields
                )
            fields.setdefault("workers", self.config.eval_workers)
            session, lock = self._acquire_tenant(tenant)
            try:
                query, statement_hit = await self._offload(
                    self.statements.get_or_parse, sql
                )
                async with lock:
                    result = await self._offload(
                        session.run,
                        query,
                        engine=engine,
                        samples=samples,
                        **fields,
                    )
            finally:
                self._release_tenant(tenant)
        finally:
            self._release_slot()
        self._count("completed")
        return {
            "result": result_to_json(result),
            "tenant": tenant,
            "degraded": degraded,
            "statement_cache_hit": statement_hit,
        }

    async def execute_stream(self, payload):
        """Async generator of ``run_iter`` snapshots (the TCP stream op).

        Each yielded item is ``{"snapshot": <result>, "seq": n, ...}``;
        the per-tenant lock and the in-flight slot are held for the whole
        stream, so a stream counts against the admission limits like one
        long request.
        """
        self._count("requests")
        self._count("streams")
        sql, tenant, engine, samples, fields = self._unpack(payload)
        if samples is not None:
            raise ProtocolError(
                "streams refine under an EvalSpec; pass 'spec' "
                "(e.g. {'mode': 'sample', 'budget': ...}) instead of 'samples'"
            )
        degraded = self._admit()  # claims the in-flight slot on success
        try:
            if degraded:
                self._count("degraded")
                engine, samples, fields = self._shed_rewrite(
                    engine, samples, fields
                )
            fields.setdefault("workers", self.config.eval_workers)
            session, lock = self._acquire_tenant(tenant)
            try:
                query, statement_hit = await self._offload(
                    self.statements.get_or_parse, sql
                )
                loop = asyncio.get_running_loop()
                # Hand-off between the run_iter thread and the async
                # consumer is a *thread* queue with a stop flag: the
                # producer only ever blocks with a timeout, so an
                # abandoned stream (client went away mid-refinement) can
                # always be unwound — it must never pin an executor
                # thread, and stop() must never deadlock on it.
                items: queue_module.Queue = queue_module.Queue(maxsize=4)
                abandoned = threading.Event()
                finished = threading.Event()

                def push(item) -> bool:
                    while not abandoned.is_set():
                        try:
                            items.put(item, timeout=0.05)
                            return True
                        except queue_module.Full:
                            continue
                    return False

                def producer():
                    try:
                        try:
                            for snapshot in session.run_iter(
                                query, engine=engine, **fields
                            ):
                                if not push(
                                    ("snapshot", result_to_json(snapshot))
                                ):
                                    return
                        except BaseException as exc:  # to the consumer
                            push(("error", exc))
                        else:
                            push(("done", None))
                    finally:
                        finished.set()

                async def next_item():
                    # Poll rather than block a thread on items.get(): a
                    # blocked get could outlive an abandoned generator.
                    # Snapshots arrive on millisecond refinement rounds;
                    # 2ms polling is invisible.
                    while True:
                        try:
                            return items.get_nowait()
                        except queue_module.Empty:
                            await asyncio.sleep(0.002)

                # The lock is managed by hand (not `async with`) so an
                # abandoned stream's cleanup runs *before* release: on
                # GeneratorExit a context manager would release at
                # unwind time while the producer thread may still be
                # inside session.run_iter — letting a new same-tenant
                # request run concurrently on the same Session.
                await lock.acquire()
                future = None
                try:
                    future = loop.run_in_executor(self._executor, producer)
                    seq = 0
                    while True:
                        kind, value = await next_item()
                        if kind == "snapshot":
                            seq += 1
                            yield {
                                "snapshot": value,
                                "seq": seq,
                                "tenant": tenant,
                                "degraded": degraded,
                                "statement_cache_hit": statement_hit,
                            }
                        elif kind == "error":
                            raise value
                        else:
                            break
                    await future
                finally:
                    # Stop the producer, then hold the tenant lock until
                    # it has actually exited (it notices `abandoned`
                    # within its 50ms push timeout, or at the end of the
                    # current refinement round).
                    abandoned.set()
                    try:
                        if future is not None:
                            while not finished.is_set():
                                await asyncio.sleep(0.002)
                    finally:
                        while True:
                            try:
                                items.get_nowait()
                            except queue_module.Empty:
                                break
                        lock.release()
            finally:
                self._release_tenant(tenant)
        finally:
            self._release_slot()
        self._count("completed")

    async def _offload(self, fn, *args, **kwargs):
        """Run blocking work on the executor pool, off the event loop."""
        loop = asyncio.get_running_loop()
        return await loop.run_in_executor(
            self._executor, functools.partial(fn, *args, **kwargs)
        )

    def note_error(self) -> None:
        """Protocol layers report a failed request for /stats accounting."""
        self._count("errors")

    # -- observability ---------------------------------------------------------

    def stats(self) -> dict:
        """The ``GET /stats`` payload: counters and cache hit rates."""
        uptime = (
            time.monotonic() - self._started_monotonic
            if self._started_monotonic is not None
            else 0.0
        )
        with self._sessions_lock:
            tenants = sorted(self._sessions)
        with self._counters_lock:
            inflight = self._inflight
            draining = self._draining
            counters = dict(self._counters)
        return {
            "server": {
                "uptime_seconds": uptime,
                "inflight": inflight,
                "draining": draining,
                "soft_limit": self.config.soft_limit,
                "hard_limit": self.config.hard_limit,
                "max_tenants": self.config.max_tenants,
                "tenants": len(tenants),
                **counters,
            },
            "statement_cache": self.statements.stats(),
            "plan_cache": self.plans.stats(),
            "distribution_cache": self.cache.stats(),
            "database": {
                "tables": {
                    name: len(table) for name, table in self.db.tables.items()
                },
                "variables": len(self.db.registry),
                "generation": self.db.generation,
                "mutations": self.db.deltas.stats(),
            },
            "config": jsonable(asdict(self.config)),
        }

    def healthz(self) -> dict:
        return {
            "status": "ok",
            "inflight": self._inflight,
            "tenants": len(self._sessions),
        }

    # -- lifecycle -------------------------------------------------------------

    async def start(self) -> "QueryServer":
        """Bind the HTTP and TCP listeners and start the executor pool."""
        if self._http_server is not None:
            raise ProtocolError("server already started")
        self._executor = ThreadPoolExecutor(
            max_workers=self.config.threads,
            thread_name_prefix="repro-server",
        )
        self._started_monotonic = time.monotonic()
        self._http_server = await asyncio.start_server(
            functools.partial(http_protocol.handle_connection, self),
            self.config.host,
            self.config.port,
        )
        self.http_address = self._http_server.sockets[0].getsockname()[:2]
        tcp_port = self.config.tcp_port
        if tcp_port is None:
            tcp_port = 0 if self.config.port == 0 else self.config.port + 1
        self._tcp_server = await asyncio.start_server(
            functools.partial(tcp_protocol.handle_connection, self),
            self.config.host,
            tcp_port,
            # readline() is bounded by the stream limit; one request is
            # one line, so the limit must cover MAX_LINE_BYTES.
            limit=tcp_protocol.MAX_LINE_BYTES + 1024,
        )
        self.tcp_address = self._tcp_server.sockets[0].getsockname()[:2]
        return self

    async def stop(self, drain_timeout: float | None = None) -> None:
        """Drain gracefully, then close the listeners and executor.

        The drain contract: the moment ``stop`` is called, new arrivals
        are shed with a structured overload error (503 + ``Retry-After``
        on HTTP) — including requests on already open keep-alive
        connections — while requests admitted before the drain get up to
        ``drain_timeout`` seconds (default ``config.drain_timeout``) to
        finish normally.  Whatever is still running past the window is
        abandoned to the executor (counted in ``drain_abandoned``)
        rather than holding shutdown hostage.
        """
        if drain_timeout is None:
            drain_timeout = self.config.drain_timeout
        with self._counters_lock:
            self._draining = True
        for server in (self._http_server, self._tcp_server):
            if server is not None:
                server.close()
        deadline = time.monotonic() + drain_timeout
        while self._inflight > 0 and time.monotonic() < deadline:
            await asyncio.sleep(0.01)
        abandoned = self._inflight
        if abandoned:
            self._count("drain_abandoned", abandoned)
        for server in (self._http_server, self._tcp_server):
            if server is not None:
                # wait_closed() is bounded defensively: on some Python
                # versions it also waits for open client connections,
                # which an abandoned stream could hold indefinitely.
                try:
                    await asyncio.wait_for(server.wait_closed(), timeout=1.0)
                except asyncio.TimeoutError:
                    pass
        self._http_server = None
        self._tcp_server = None
        if self._executor is not None:
            executor = self._executor
            self._executor = None
            if abandoned:
                # Don't join threads still running abandoned work — let
                # them finish (or die with the process) in the background.
                executor.shutdown(wait=False, cancel_futures=True)
            else:
                # Join worker threads OFF the event loop: a
                # shutdown(wait=True) here would block the loop and
                # deadlock any in-flight work that still needs a loop
                # tick to finish.
                await asyncio.get_running_loop().run_in_executor(
                    None, functools.partial(executor.shutdown, wait=True)
                )
        with self._counters_lock:
            self._draining = False

    async def serve_forever(self) -> None:
        """Start (when needed) and serve until cancelled."""
        if self._http_server is None:
            await self.start()
        await asyncio.gather(
            self._http_server.serve_forever(),
            self._tcp_server.serve_forever(),
        )

    async def __aenter__(self) -> "QueryServer":
        return await self.start()

    async def __aexit__(self, exc_type, exc, tb) -> bool:
        await self.stop()
        return False

    def __repr__(self):
        return (
            f"QueryServer(http={self.http_address}, tcp={self.tcp_address}, "
            f"tenants={len(self._sessions)}, inflight={self._inflight})"
        )
