"""The paper's running example (Figure 1): suppliers, products, prices.

Reconstructs the pvc-database of Figure 1 — uncertain suppliers S,
uncertain price listings PS, and two uncertain product tables P1/P2 —
then evaluates

* Q1 = π_{shop, price}[S ⋈ PS ⋈ (P1 ∪ P2)]  (Figure 1d), and
* Q2 = π_shop σ_{P≤50} $_{shop; P←MAX(price)}[Q1]  (Figure 1e),

printing the symbolic pvc-tables and the exact answer probabilities, and
finally the decomposition tree of the ⟨Gap⟩ annotation (Figure 6).

Run with::

    python examples/retail_pricing.py
"""

from repro import (
    BOOLEAN,
    AggSpec,
    Compiler,
    GroupAgg,
    PVCDatabase,
    Project,
    Select,
    SproutEngine,
    Union,
    Var,
    VariableRegistry,
    cmp_,
    conj,
    eq,
    product_of,
    relation,
)


def build_database() -> PVCDatabase:
    registry = VariableRegistry()
    db = PVCDatabase(registry=registry, semiring=BOOLEAN)

    suppliers = db.create_table("S", ["sid", "shop"])
    for sid, shop in [(1, "M&S"), (2, "M&S"), (3, "M&S"), (4, "Gap"), (5, "Gap")]:
        registry.bernoulli(f"x{sid}", 0.5)
        suppliers.add((sid, shop), Var(f"x{sid}"))

    listings = db.create_table("PS", ["psid", "pid", "price"])
    for sid, pid, price in [
        (1, 1, 10), (1, 2, 50), (2, 1, 11), (2, 2, 60), (3, 3, 15),
        (3, 4, 40), (4, 1, 15), (4, 3, 60), (5, 1, 10),
    ]:
        name = f"y{sid}{pid}"
        registry.bernoulli(name, 0.6)
        listings.add((sid, pid, price), Var(name))

    products1 = db.create_table("P1", ["ppid", "weight"])
    for pid, weight in [(1, 4), (2, 8), (3, 7), (4, 6)]:
        registry.bernoulli(f"z{pid}", 0.7)
        products1.add((pid, weight), Var(f"z{pid}"))

    products2 = db.create_table("P2", ["ppid", "weight"])
    registry.bernoulli("z5", 0.5)
    products2.add((1, 5), Var("z5"))
    return db


def q1():
    """Q1 = π_{shop,price}[S ⋈ PS ⋈ (P1 ∪ P2)]."""
    products = Union(relation("P1"), relation("P2"))
    joined = Select(
        product_of(relation("S"), relation("PS"), products),
        conj(eq("sid", "psid"), eq("pid", "ppid")),
    )
    return Project(joined, ["shop", "price"])


def q2(limit: int = 50):
    """Q2 = π_shop σ_{P≤limit} $_{shop; P←MAX(price)}[Q1]."""
    grouped = GroupAgg(q1(), ["shop"], [AggSpec.of("P", "MAX", "price")])
    return Project(Select(grouped, cmp_("P", "<=", limit)), ["shop"])


def main():
    db = build_database()
    engine = SproutEngine(db)

    print("Q1 — prices of products available in shops (Figure 1d):")
    print(engine.rewrite(q1()).pretty())

    print("\nQ1 answer probabilities:")
    for row in engine.run(q1()):
        print(f"  {row.values}:  P = {row.probability():.4f}")

    print("\nQ2 — shops whose maximal price is ≤ 50 (Figure 1e):")
    result = engine.run(q2())
    for row in result:
        print(f"  {row.values[0]:<5} P = {row.probability():.4f}")
        print(f"        Φ = {row.annotation!r}")

    # The distribution of MAX(price) per shop, conditioned on existence.
    grouped = GroupAgg(q1(), ["shop"], [AggSpec.of("P", "MAX", "price")])
    print("\nDistribution of MAX(price) per shop:")
    for row in engine.run(grouped):
        shop = row.values[0]
        print(f"  {shop}:")
        for value, probability in sorted(
            row.value_distribution("P").items(), key=lambda kv: float(kv[0])
        ):
            print(f"    max = {value:>4}:  {probability:.4f}")

    # Figure 6: the d-tree of the Gap group's semimodule expression.
    gap_row = next(r for r in engine.rewrite(grouped) if r.values[0] == "Gap")
    compiler = Compiler(db.registry, BOOLEAN)
    tree = compiler.compile(gap_row.values[1])
    print("\nDecomposition tree of the ⟨Gap⟩ aggregation value (Figure 6):")
    print(tree.pretty("  "))
    print(f"\n(d-tree: {tree.dag_size()} nodes, "
          f"{compiler.mutex_nodes_created} Shannon expansions)")


if __name__ == "__main__":
    main()
