"""Plan-to-code generation: fused per-plan kernels with cross-operator CSE.

Public surface:

* :func:`compile_plan` — lower a physical plan to a picklable
  :class:`CompiledPlan` (one fused Python function per plan).
* :func:`kernel_for` — the memoised entry point engines use: compiles a
  :class:`~repro.query.executor.PreparedQuery`'s plan at most once per
  semiring, caching on the prepared query's ``op_cache`` so the compiled
  function rides the existing :class:`~repro.engine.base.PlanCache` (and
  the server's shared statement cache) across sessions and tenants.
  Returns ``None`` when the plan has no compiled form (interpreter
  fallback) unless ``REPRO_CODEGEN_STRICT`` is set.
* :class:`~repro.codegen.binding.BoundPlan` (via
  :meth:`CompiledPlan.bind`) — all world-invariant work hoisted, for the
  per-world engines.
* :func:`codegen_enabled` — the ``REPRO_CODEGEN`` escape hatch.

The tree-walking interpreter in :mod:`repro.query.executor` remains the
conformance oracle: every kernel reproduces its ``{values:
multiplicity}`` mappings bit-for-bit, content and insertion order.
"""

from __future__ import annotations

from repro.codegen.emit import CompiledPlan, compile_plan
from repro.codegen.runtime import (
    CodegenUnsupported,
    codegen_enabled,
    codegen_strict,
    record_cache_hit,
    reset_runtime_stats,
    runtime_stats,
)

__all__ = [
    "CompiledPlan",
    "CodegenUnsupported",
    "compile_plan",
    "kernel_for",
    "codegen_enabled",
    "codegen_strict",
    "runtime_stats",
    "reset_runtime_stats",
]

_MISSING = object()
_KERNEL_KEY_PREFIX = "codegen"


def kernel_for(prepared, semiring) -> CompiledPlan | None:
    """The compiled kernel for a prepared query, compiled at most once.

    Cached on ``prepared.op_cache`` under a ``("codegen", semiring
    name)`` key — disjoint from the interpreter's ``id(op)`` integer
    keys — so the kernel is shared by every execution of the prepared
    plan, including plans resident in a :class:`PlanCache` or the query
    server's statement cache.  A plan that cannot be compiled caches
    ``None`` (the fallback decision is also made only once).
    """
    key = (_KERNEL_KEY_PREFIX, semiring.name)
    cache = prepared.op_cache
    entry = cache.get(key, _MISSING)
    if entry is not _MISSING:
        if entry is not None:
            record_cache_hit()
        return entry
    try:
        compiled = compile_plan(prepared.plan, semiring)
    except CodegenUnsupported:
        if codegen_strict():
            raise
        compiled = None
    cache[key] = compiled
    return compiled
