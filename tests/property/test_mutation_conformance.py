"""Property: mutations never leave a stale answer behind.

Each example draws a random insert/update/delete script, applies it to a
*warm* session (caches primed before the writes), and checks that every
engine — exact, compiled-kernel, bounded-approximate, seeded
Monte-Carlo — answers fingerprint-identically to a cold session rebuilt
from scratch over the mutated data.  Any cache (scan, hash index, bound
plan, compiled distribution, tuple-independence memo) surviving a
mutation it should not have survived shows up as a fingerprint mismatch
here.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import connect, count_, sum_
from repro.db.pvc_table import PVCDatabase, PVCTable
from repro.prob.variables import VariableRegistry
from repro.session import Session

KINDS = ("a", "b", "c")

probabilities = st.sampled_from((0.1, 0.25, 0.5, 0.7, 0.9))
kinds = st.sampled_from(KINDS)
values = st.integers(min_value=1, max_value=50)


@st.composite
def mutation_scripts(draw):
    """1-6 mutations: inserts, value updates, probability updates, deletes."""
    script = []
    for _ in range(draw(st.integers(min_value=1, max_value=6))):
        op = draw(
            st.sampled_from(("insert", "update_values", "update_p", "delete"))
        )
        if op == "insert":
            script.append((op, (draw(kinds), draw(values)), draw(probabilities)))
        elif op == "update_values":
            script.append((op, draw(kinds), draw(values)))
        elif op == "update_p":
            script.append((op, draw(kinds), draw(probabilities)))
        else:
            script.append((op, draw(kinds)))
    return script


def build_session(seed: int = 5) -> Session:
    s = connect(seed=seed)
    t = s.table("items", ["kind", "value"])
    for kind, value, p in [
        ("a", 10, 0.5),
        ("a", 20, 0.4),
        ("b", 30, 0.7),
        ("b", 40, 0.2),
        ("c", 5, 0.9),
    ]:
        t.insert((kind, value), p=p)
    return s


def apply_script(session: Session, script) -> None:
    t = session.table("items")
    for step in script:
        if step[0] == "insert":
            t.insert(step[1], p=step[2])
        elif step[0] == "update_values":
            t.update({"kind": step[1]}, {"value": step[2]})
        elif step[0] == "update_p":
            t.update({"kind": step[1]}, p=step[2])
        else:
            t.delete({"kind": step[1]})


def rebuilt_from_scratch(session: Session) -> Session:
    """The oracle: a cold session over copies of the mutated state."""
    registry = VariableRegistry()
    for name, dist in session.registry.items():
        registry.declare(name, dist)
    tables = {
        name: PVCTable(table.schema, list(table.rows))
        for name, table in session.db.tables.items()
    }
    db = PVCDatabase(tables=tables, registry=registry, semiring=session.semiring)
    return Session(database=db, seed=session.seed, samples=session.samples)


def queries(session: Session):
    t = session.table("items")
    return [
        t.select("kind").build(),
        t.group_by("kind").agg(n=count_()).build(),
        t.group_by().agg(total=sum_("value")).build(),
    ]


def fingerprint(result):
    return [
        (row.values, row.probability().low, row.probability().high)
        for row in result
    ]


#: The comparison grid: (engine, run options).  The Monte-Carlo leg is
#: seeded and must only be instantiated at comparison time, so the warm
#: and cold adapters consume identical RNG streams.
GRID = (
    ("sprout", {"codegen": False}),
    ("sprout", {"codegen": True}),
    ("naive", {"codegen": False}),
    ("naive", {"codegen": True}),
    ("approx", {"epsilon": 0.01}),
    ("montecarlo", {"epsilon": 0.1}),
)


@settings(max_examples=15, deadline=None)
@given(script=mutation_scripts())
def test_warm_session_matches_rebuilt_session_on_every_engine(script):
    warm = build_session()
    # Prime every cache layer before mutating: compiled distributions,
    # bound plans, hash indexes, the tuple-independence memo.
    for query in queries(warm):
        warm.run(query, engine="sprout")
        warm.run(query, engine="naive")
    apply_script(warm, script)
    cold = rebuilt_from_scratch(warm)
    for query in queries(warm):
        for engine, options in GRID:
            left = fingerprint(warm.run(query, engine=engine, **options))
            right = fingerprint(cold.run(query, engine=engine, **options))
            assert left == right, (engine, options, script)


def test_workers_grid_after_fixed_script():
    """Deterministic multi-core leg (process pools are too heavy to spin
    up per Hypothesis example): after a fixed mixed script, parallel
    warm answers equal the cold oracle's serial ones."""
    warm = build_session()
    for query in queries(warm):
        warm.run(query, engine="sprout")
    apply_script(
        warm,
        [
            ("insert", ("c", 33), 0.6),
            ("update_values", "a", 15),
            ("update_p", "b", 0.35),
            ("delete", "c"),
            ("insert", ("b", 44), 0.8),
        ],
    )
    cold = rebuilt_from_scratch(warm)
    for query in queries(warm):
        for engine in ("sprout", "naive"):
            parallel = fingerprint(
                warm.run(query, engine=engine, workers=2)
            )
            serial = fingerprint(cold.run(query, engine=engine))
            assert parallel == serial, engine


if __name__ == "__main__":
    import pytest

    raise SystemExit(pytest.main([__file__, "-v"]))
