"""Supply-risk analysis: exact tails, approximation bounds, Monte Carlo.

A logistics scenario: shipments may be delayed (each with its own
probability), and each delayed shipment incurs a penalty.  We study the
total penalty — the distribution of ``Σ_SUM Φᵢ ⊗ penaltyᵢ`` — and the
probability that a service-level condition holds, three ways:

1. exact, by knowledge compilation;
2. with guaranteed lower/upper *bounds* from budgeted partial compilation
   (the paper's Section-1 remark that d-trees also support approximation);
3. by Monte-Carlo sampling, for comparison.

Run with::

    python examples/risk_analysis.py
"""

import random

from repro import (
    BOOLEAN,
    SUM,
    ApproximateCompiler,
    MConst,
    Var,
    aggsum,
    approximate_probability,
    compare,
    connect,
    prune,
    tensor,
)

SERVICE_LEVEL = 120  # total penalty budget


def build_penalty_expression(rng, registry, shipments=14):
    """Σ Φᵢ ⊗ penaltyᵢ with entangled delay causes.

    Shipments share upstream causes (port congestion, weather cells), so
    their delay annotations are products over a small pool of cause
    variables — the same structure as the paper's Eq.-11 workloads.
    """
    causes = [f"cause{i}" for i in range(8)]
    for cause in causes:
        registry.bernoulli(cause, rng.uniform(0.1, 0.5))
    terms = []
    for i in range(shipments):
        involved = rng.sample(causes, rng.randint(1, 2))
        phi = Var(involved[0])
        for name in involved[1:]:
            phi = phi * Var(name)
        penalty = rng.choice([5, 10, 20, 40])
        terms.append(tensor(phi, MConst(SUM, penalty)))
    return aggsum(SUM, terms)


def main():
    # The session facade also fronts raw expression workloads: it owns the
    # registry and routes distribution queries through its per-session
    # compilation cache.
    rng = random.Random(2026)
    session = connect()
    registry = session.registry
    total_penalty = build_penalty_expression(rng, registry)

    condition = compare(total_penalty, "<=", SERVICE_LEVEL)

    # 1. Exact distribution of the total penalty.
    dist = session.distribution(total_penalty)
    print(f"Total-penalty distribution ({len(dist)} outcomes):")
    print(f"  expectation : {dist.expectation():8.2f}")
    print(f"  std. dev    : {dist.variance() ** 0.5:8.2f}")
    print(f"  95% quantile: {dist.quantile(0.95):8.0f}")

    exact = session.probability(condition)
    print(f"\nP(total penalty ≤ {SERVICE_LEVEL}) exact: {exact:.6f}")

    # 2. Guaranteed bounds at increasing compilation budgets.  Budgeted
    #    approximation works on the Boolean condition's semiring part; we
    #    demonstrate it on the canonical "any delay at all" event.
    any_delay = None
    for node in total_penalty.children:
        phi = node.phi
        any_delay = phi if any_delay is None else any_delay + phi
    print("\nBounds for P(at least one shipment delayed):")
    exact_delay = session.probability(any_delay)
    for budget in (0, 1, 2, 4, 16):
        bounds = ApproximateCompiler(registry, budget).bounds(any_delay)
        marker = "=" if bounds.width < 1e-9 else "∈"
        print(f"  budget {budget:>3}: P {marker} {bounds}")
    refined = approximate_probability(any_delay, registry, epsilon=1e-6)
    print(f"  refined     : {refined}  (exact {exact_delay:.6f})")

    # 3. Monte-Carlo comparison on the service-level condition.
    from repro import Valuation

    hits = 0
    samples = 4000
    sampler = random.Random(7)
    names = registry.names()
    for _ in range(samples):
        assignment = {
            name: sampler.random() < registry[name][True] for name in names
        }
        if Valuation(assignment, BOOLEAN)(condition):
            hits += 1
    print(
        f"\nMonte Carlo ({samples} samples): "
        f"{hits / samples:.4f}   vs exact {exact:.4f}"
    )

    # Show what pruning does to the condition before compilation.
    pruned = prune(condition, BOOLEAN)
    print(
        f"\nCondition size before/after pruning: "
        f"{condition.size()} → {pruned.size()} AST nodes"
    )


if __name__ == "__main__":
    main()
