"""Unit tests for d-tree nodes and bottom-up evaluation (Definition 7)."""

import math

import pytest

from repro.algebra.conditions import COMPARISON_OPS
from repro.algebra.monoid import MIN, SUM
from repro.algebra.semiring import BOOLEAN, NATURALS
from repro.core.dtree import (
    CompareNode,
    CompileContext,
    ConstLeaf,
    MPlusNode,
    MutexNode,
    PlusNode,
    TensorNode,
    TimesNode,
    VarLeaf,
)
from repro.errors import CompilationError
from repro.prob.variables import VariableRegistry


@pytest.fixture
def ctx():
    reg = VariableRegistry()
    reg.bernoulli("x", 0.3)
    reg.bernoulli("y", 0.6)
    return CompileContext(reg, BOOLEAN)


class TestLeaves:
    def test_const_leaf(self, ctx):
        assert ConstLeaf(5).distribution(ctx)[5] == 1.0

    def test_var_leaf(self, ctx):
        dist = VarLeaf("x").distribution(ctx)
        assert dist[True] == pytest.approx(0.3)

    def test_var_leaf_coerces_to_semiring(self):
        reg = VariableRegistry()
        reg.bernoulli("x", 0.3)
        nat_ctx = CompileContext(reg, NATURALS)
        dist = VarLeaf("x").distribution(nat_ctx)
        assert dist[1] == pytest.approx(0.3)
        assert dist[0] == pytest.approx(0.7)


class TestInnerNodes:
    def test_plus_node_is_disjunction(self, ctx):
        node = PlusNode([VarLeaf("x"), VarLeaf("y")])
        assert node.distribution(ctx)[True] == pytest.approx(1 - 0.7 * 0.4)

    def test_times_node_is_conjunction(self, ctx):
        node = TimesNode([VarLeaf("x"), VarLeaf("y")])
        assert node.distribution(ctx)[True] == pytest.approx(0.18)

    def test_nodes_require_two_children(self):
        with pytest.raises(CompilationError):
            PlusNode([VarLeaf("x")])
        with pytest.raises(CompilationError):
            TimesNode([])

    def test_mplus_node_min(self, ctx):
        node = MPlusNode(
            MIN,
            [
                TensorNode(MIN, VarLeaf("x"), ConstLeaf(5)),
                TensorNode(MIN, VarLeaf("y"), ConstLeaf(9)),
            ],
        )
        dist = node.distribution(ctx)
        assert dist[5] == pytest.approx(0.3)
        assert dist[9] == pytest.approx(0.7 * 0.6)
        assert dist[math.inf] == pytest.approx(0.7 * 0.4)

    def test_tensor_node(self, ctx):
        node = TensorNode(SUM, VarLeaf("x"), ConstLeaf(10))
        dist = node.distribution(ctx)
        assert dist[10] == pytest.approx(0.3)
        assert dist[0] == pytest.approx(0.7)

    def test_compare_node(self, ctx):
        left = TensorNode(SUM, VarLeaf("x"), ConstLeaf(10))
        node = CompareNode(COMPARISON_OPS[">="], left, ConstLeaf(5))
        assert node.distribution(ctx)[True] == pytest.approx(0.3)

    def test_mutex_node_mixture(self, ctx):
        node = MutexNode(
            "x",
            [
                (False, 0.7, ConstLeaf(False)),
                (True, 0.3, ConstLeaf(True)),
            ],
        )
        assert node.distribution(ctx)[True] == pytest.approx(0.3)

    def test_mutex_node_needs_branches(self):
        with pytest.raises(CompilationError):
            MutexNode("x", [])


class TestStructureMetrics:
    def test_sizes(self, ctx):
        shared = VarLeaf("x")
        node = PlusNode([TimesNode([shared, VarLeaf("y")]), shared])
        assert node.tree_size() == 5
        assert node.dag_size() == 4  # shared leaf counted once

    def test_depth(self):
        node = PlusNode([TimesNode([VarLeaf("x"), VarLeaf("y")]), VarLeaf("z")])
        assert node.depth() == 3

    def test_distribution_cached_per_context(self, ctx):
        node = PlusNode([VarLeaf("x"), VarLeaf("y")])
        assert node.distribution(ctx) is node.distribution(ctx)

    def test_pretty_renders_all_nodes(self):
        node = MutexNode(
            "x",
            [(False, 0.5, ConstLeaf(False)), (True, 0.5, VarLeaf("y"))],
        )
        text = node.pretty()
        assert "⊔ x" in text
        assert "y" in text
