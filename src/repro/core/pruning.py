"""Pruning rules for conditional expressions (Section 5).

The evaluation of ``[α θ β]`` expressions improves considerably when parts
of ``α`` or ``β`` are provably redundant for the comparison.  This module
implements the paper's pruning rules and their symmetric/dual variants for
aggregations compared against constants:

**MIN/MAX term dropping.**  For ``[Σ_MIN Φᵢ ⊗ mᵢ θ c]`` only terms whose
value can influence the comparison are kept; e.g. for ``θ`` = ``≤`` terms
with ``mᵢ > c`` can never make the minimum exceed-or-meet the bound and are
dropped (the paper's first example rule).  Dually for MAX.

**SUM/COUNT constant folding.**  ``[Σ_SUM Φᵢ ⊗ mᵢ ≤ c] ≡ 1_S`` whenever
``Σ mᵢ ≤ c`` — the sum over any subset of non-negative values is bounded
by the total (requires Boolean scalars, Proposition 3's setting); dually
``≡ 0_S`` when the bound is unreachable.

**SUM/COUNT saturation.**  When folding does not apply, the aggregation
monoid is replaced by a saturating :class:`CappedSumMonoid` with cap
``c + 1``: every partial sum strictly above ``c`` behaves identically under
every comparison operator, so the supports of all intermediate
distributions stay bounded by ``c + 2`` values.  This is the "early
pruning avoids the full materialisation of exponential-size distributions"
optimisation and the computational content of Proposition 3.
"""

from __future__ import annotations

import math

from repro.algebra.conditions import Compare, compare
from repro.algebra.expressions import Expr, Prod, SConst, Sum, Var, sprod, ssum
from repro.algebra.monoid import (
    MAX,
    MIN,
    CappedSumMonoid,
    Monoid,
    SumMonoid,
)
from repro.algebra.semimodule import (
    AggSum,
    MConst,
    ModuleExpr,
    Tensor,
    aggsum,
    module_terms,
    tensor,
)
from repro.algebra.semiring import Semiring

__all__ = ["prune", "prune_comparison"]


def prune(expr: Expr, semiring: Semiring) -> Expr:
    """Recursively apply the pruning rules to every conditional in ``expr``."""
    if isinstance(expr, (Var, SConst, MConst)):
        return expr
    if isinstance(expr, Sum):
        return ssum([prune(c, semiring) for c in expr.children])
    if isinstance(expr, Prod):
        return sprod([prune(c, semiring) for c in expr.children])
    if isinstance(expr, Tensor):
        return tensor(prune(expr.phi, semiring), prune(expr.arg, semiring))
    if isinstance(expr, AggSum):
        return aggsum(expr.monoid, [prune(c, semiring) for c in expr.children])
    if isinstance(expr, Compare):
        left = prune(expr.left, semiring)
        right = prune(expr.right, semiring)
        return prune_comparison(compare(left, expr.op, right), semiring)
    return expr


def prune_comparison(expr: Expr, semiring: Semiring) -> Expr:
    """Apply the pruning rules to a single (already-folded) comparison."""
    if not isinstance(expr, Compare):
        return expr
    # Normalise to "aggregation θ constant" with the aggregation on the left.
    left, op, right = expr.left, expr.op, expr.right
    if isinstance(right, ModuleExpr) and isinstance(left, MConst) and not left.variables:
        # [c θ α] ≡ [α θ⁻¹ c] with the mirrored relation.
        mirrored = {"<": ">", ">": "<", "<=": ">=", ">=": "<=", "=": "=", "!=": "!="}
        return prune_comparison(
            compare(right, mirrored[op.symbol], left), semiring
        )
    if not isinstance(left, ModuleExpr) or not isinstance(right, MConst):
        return expr
    if right.variables:
        return expr
    threshold = right.value
    monoid = left.monoid
    if monoid == MIN:
        return _prune_min_max(left, op, threshold, keep_min=True)
    if monoid == MAX:
        return _prune_min_max(left, op, threshold, keep_min=False)
    if isinstance(monoid, SumMonoid) and not isinstance(monoid, CappedSumMonoid):
        return _prune_sum(left, op, threshold, semiring)
    return compare(left, op, threshold_const(monoid, threshold))


def threshold_const(monoid: Monoid, value) -> MConst:
    return MConst(monoid, value)


def _prune_min_max(left: ModuleExpr, op, c, *, keep_min: bool) -> Expr:
    """Drop terms that cannot influence ``[Σ_MIN/MAX ... θ c]``.

    ``keep_min=True`` handles MIN; MAX is the mirror image obtained by
    flipping every value comparison.
    """
    terms = module_terms(left)
    monoid = left.monoid

    def keep(m) -> bool:
        # The keep-sets derived from the MIN semantics (see module docstring
        # and tests); for MAX, mirror the orderings.
        if keep_min:
            if op.symbol in ("<=",):
                return m <= c
            if op.symbol in ("<", ">="):
                return m < c
            return m <= c  # >, =, != all keep values ≤ c
        if op.symbol in (">=",):
            return m >= c
        if op.symbol in (">", "<="):
            return m > c
        return m >= c  # <, =, != all keep values ≥ c

    kept = []
    changed = False
    for term in terms:
        value = _term_value(term)
        if value is None or keep(value):
            kept.append(term)
        else:
            changed = True
    if not changed:
        return compare(left, op, MConst(monoid, c))
    return compare(aggsum(monoid, kept), op, MConst(monoid, c))


def _prune_sum(left: ModuleExpr, op, c, semiring: Semiring) -> Expr:
    """Fold or saturate a SUM/COUNT comparison against a constant."""
    terms = module_terms(left)
    values = [_term_value(term) for term in terms]
    if any(v is None for v in values) or any(v < 0 for v in values):
        # Non-canonical summands or negative contributions: saturation and
        # folding arguments rely on monotone non-negative sums; skip.
        return compare(left, op, MConst(left.monoid, c))

    # A sum of non-negative contributions is always ≥ 0; comparisons with a
    # negative constant are decided outright (in any semiring).
    if c < 0:
        truth = op.symbol in (">=", ">", "!=")
        return SConst(int(truth))

    # Boolean scalars make Σ mᵢ an upper bound for the aggregate value.
    if semiring.is_boolean and all(v is not None for v in values):
        total = sum(values)
        if op.symbol in ("<=",) and total <= c:
            return SConst(1)
        if op.symbol in ("<",) and total < c:
            return SConst(1)
        if op.symbol in (">",) and total <= c:
            return SConst(0)
        if op.symbol in (">=",) and total < c:
            return SConst(0)
        if op.symbol in ("=",) and total < c:
            return SConst(0)
        if op.symbol in ("!=",) and total < c:
            return SConst(1)

    # Saturate: every partial sum above c behaves identically under θ.
    cap = math.floor(c) + 1 if not isinstance(c, int) else c + 1
    capped = CappedSumMonoid(cap)
    rebuilt = aggsum(capped, [_retag_monoid(term, capped) for term in terms])
    return compare(rebuilt, op, MConst(capped, min(c, cap)))


def _term_value(term: ModuleExpr):
    """The monoid value carried by a canonical semimodule summand."""
    if isinstance(term, MConst):
        return term.value
    if isinstance(term, Tensor) and isinstance(term.arg, MConst):
        return term.arg.value
    return None


def _retag_monoid(term: ModuleExpr, monoid: Monoid) -> ModuleExpr:
    """Rebuild a canonical summand over a different (compatible) monoid."""
    if isinstance(term, MConst):
        return MConst(monoid, term.value)
    if isinstance(term, Tensor) and isinstance(term.arg, MConst):
        return tensor(term.phi, MConst(monoid, term.arg.value))
    raise ValueError(f"cannot retag non-canonical summand {term!r}")
