"""TPC-H analytics on uncertain data (the paper's Section 7.2 scenario).

Generates a tuple-independent TPC-H-shaped database, classifies and runs
the paper's two queries, and prints the timing breakdown of Figure 11:
Q0 (deterministic), ⟦·⟧ (expression construction), P(·) (probability
computation).

Run with::

    python examples/tpch_analytics.py [scale_factor]
"""

import sys

from repro import connect
from repro.workloads.tpch import (
    TPCHConfig,
    generate_tpch,
    prepare_q2_aliases,
    tpch_q1,
    tpch_q2,
)
from repro.workloads.tpch.queries import q2_candidate


def main():
    scale_factor = float(sys.argv[1]) if len(sys.argv) > 1 else 0.1
    print(f"Generating TPC-H data at scale factor {scale_factor} ...")
    db = generate_tpch(TPCHConfig(scale_factor=scale_factor, seed=7))
    for name, table in sorted(db.tables.items()):
        print(f"  {name:<10} {len(table):>6} tuples")

    # Adopt the generated database into a session; Q1/Q2 are outside the
    # SQL fragment, so they go in as algebra trees through the same facade.
    s = connect(database=db, engine="sprout")

    # --- Q1: grouped COUNT over lineitem --------------------------------
    q1 = tpch_q1()
    print(f"\nQ1 = {q1!r}")
    print(f"  tractability: {s.classify(q1)!r}")
    _, q0_seconds = s.deterministic_baseline(q1)
    result = s.run(q1)
    print(
        f"  Q0 = {q0_seconds*1000:.1f}ms   "
        f"⟦·⟧ = {result.timings['rewrite_seconds']*1000:.1f}ms   "
        f"P(·) = {result.timings['probability_seconds']*1000:.1f}ms"
    )
    print("  expected number of qualifying orders per (flag, status):")
    for row in sorted(result, key=lambda r: r.values[:2]):
        flag, status = row.values[:2]
        expectation = row.value_distribution("order_count").expectation()
        print(f"    ({flag}, {status}): E[count] = {expectation:.2f}")

    # --- Q2: minimum-cost supplier with a nested aggregate --------------
    prepare_q2_aliases(db)
    part_key, region = q2_candidate(db)
    q2 = tpch_q2(part_key, region)
    print(f"\nQ2 (part {part_key}, region {region!r})")
    print(f"  tractability: {s.classify(q2)!r}")
    print("  (the nested aggregate repeats partsupp — outside Q_hie, so")
    print("   evaluation relies on the generic compilation path)")
    _, q0_seconds = s.deterministic_baseline(q2)
    result = s.run(q2)
    print(
        f"  Q0 = {q0_seconds*1000:.1f}ms   "
        f"⟦·⟧ = {result.timings['rewrite_seconds']*1000:.1f}ms   "
        f"P(·) = {result.timings['probability_seconds']*1000:.1f}ms"
    )
    print("  P(supplier offers the minimum cost):")
    for row in sorted(result, key=lambda r: -r.probability()):
        print(f"    {row.values[0]}: {row.probability():.4f}")


if __name__ == "__main__":
    main()
