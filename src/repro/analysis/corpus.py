"""Differential corpus for the kernel verifier.

A small database (two joinable tables over four Bernoulli variables)
and one query shape per fused operator, compiled under both built-in
semirings — the same coverage the codegen conformance suite uses, but
importable from production code so ``python -m repro.analysis`` can
verify emitted kernels without depending on the test tree.

Each entry carries the compiled kernel and, where binding succeeds, a
:class:`~repro.codegen.binding.BoundPlan` so the verifier can also
check the *hoisted* statics against the declared layout.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.algebra.expressions import SConst, Var
from repro.algebra.semiring import BOOLEAN, NATURALS
from repro.codegen import compile_plan
from repro.db.pvc_table import PVCDatabase
from repro.prob.variables import VariableRegistry
from repro.query.ast import (
    AggSpec,
    Extend,
    GroupAgg,
    Product,
    Project,
    Select,
    Union,
    relation,
)
from repro.query.executor import prepare
from repro.query.predicates import cmp_, eq, lit

__all__ = ["CorpusEntry", "build_corpus", "corpus_db", "corpus_queries"]


def corpus_db(semiring):
    """Two joinable tables over four variables (16 worlds)."""
    registry = VariableRegistry()
    db = PVCDatabase(registry=registry, semiring=semiring)
    r = db.create_table("R", ["a", "b"])
    registry.bernoulli("x1", 0.4)
    registry.bernoulli("x2", 0.7)
    r.add(("u", 1), Var("x1"))
    if semiring is NATURALS:
        r.add(("u", 1), SConst(2))  # duplicate values, merged multiplicity
    r.add(("v", 2), Var("x2"))
    r.add(("w", 3), SConst(semiring.one))
    s = db.create_table("S", ["c", "d"])
    registry.bernoulli("y1", 0.5)
    registry.bernoulli("y2", 0.8)
    s.add((1, "p"), Var("y1"))
    s.add((2, "q"), Var("y2"))
    s.add((3, "p"), SConst(semiring.one))
    return db


def corpus_queries() -> dict:
    """One query shape per fused operator."""
    return {
        "project": Project(relation("R"), ["a"]),
        "select": Select(relation("R"), cmp_("b", ">=", 2)),
        "join": Project(
            Select(Product(relation("R"), relation("S")), eq("b", "c")),
            ["a", "d"],
        ),
        "union": Union(
            Select(relation("R"), eq("a", lit("u"))),
            Select(relation("R"), cmp_("b", ">", 1)),
        ),
        "shared-subplan": Union(
            Select(relation("R"), cmp_("b", ">", 1)),
            Select(relation("R"), cmp_("b", ">", 1)),
        ),
        "extend-permute": Project(
            Extend(relation("R"), "a2", "a"), ["a2", "b", "a"]
        ),
        "groupby": GroupAgg(
            Select(Product(relation("R"), relation("S")), eq("b", "c")),
            ["d"],
            [AggSpec.of("n", "count")],
        ),
        "agg-sum": GroupAgg(
            relation("S"),
            ["d"],
            [AggSpec.of("total", "sum", "c")],
        ),
    }


@dataclass
class CorpusEntry:
    name: str
    compiled: object
    bound: object | None


def build_corpus() -> list[CorpusEntry]:
    """Compile (and bind) every corpus shape under both semirings."""
    entries: list[CorpusEntry] = []
    for semiring, semiring_id in ((BOOLEAN, "boolean"), (NATURALS, "naturals")):
        db = corpus_db(semiring)
        queries = corpus_queries()
        for shape in sorted(queries):
            prepared = prepare(
                queries[shape],
                db.catalog(),
                db.cardinalities(),
                optimize=False,
            )
            compiled = compile_plan(prepared.plan, semiring)
            try:
                bound = compiled.bind(db, sorted(db.variables))
            except Exception:
                bound = None
            entries.append(
                CorpusEntry(f"{semiring_id}:{shape}", compiled, bound)
            )
    return entries
