"""Unit tests for structural decomposition helpers."""

import pytest

from repro.algebra.expressions import ONE, SConst, Var, sprod, ssum
from repro.algebra.monoid import SUM
from repro.algebra.semimodule import MConst, tensor
from repro.core.decompose import (
    common_factor_variables,
    divide_by_variable,
    factor_variables,
    independent_groups,
)
from repro.errors import CompilationError


class TestIndependentGroups:
    def test_disjoint_expressions_split(self):
        groups = independent_groups([Var("a") * Var("b"), Var("c")])
        assert len(groups) == 2

    def test_shared_variable_connects(self):
        groups = independent_groups([Var("a") * Var("b"), Var("b") * Var("c")])
        assert len(groups) == 1

    def test_transitive_connection(self):
        exprs = [Var("a") * Var("b"), Var("b") * Var("c"), Var("c") * Var("d")]
        assert len(independent_groups(exprs)) == 1

    def test_variable_free_are_singletons(self):
        groups = independent_groups([SConst(3), SConst(4), Var("a")])
        assert len(groups) == 3

    def test_paper_example_decomposition(self):
        # α = ab⊗10 + xy⊗20 decomposes into independent sub-expressions.
        t1 = tensor(Var("a") * Var("b"), MConst(SUM, 10))
        t2 = tensor(Var("x") * Var("y"), MConst(SUM, 20))
        assert len(independent_groups([t1, t2])) == 2

    def test_groups_cover_input(self):
        exprs = [Var("a"), Var("b"), Var("a") * Var("c")]
        groups = independent_groups(exprs)
        flattened = [e for group in groups for e in group]
        assert sorted(map(repr, flattened)) == sorted(map(repr, exprs))


class TestFactorVariables:
    def test_bare_variable(self):
        assert factor_variables(Var("x")) == {"x"}

    def test_product_factors(self):
        expr = sprod([Var("x"), Var("y"), ssum([Var("z"), Var("w")])])
        assert factor_variables(expr) == {"x", "y"}

    def test_tensor_factors_come_from_scalar(self):
        expr = tensor(Var("x") * Var("y"), MConst(SUM, 5))
        assert factor_variables(expr) == {"x", "y"}

    def test_sum_has_no_top_level_factors(self):
        assert factor_variables(ssum([Var("x"), Var("y")])) == frozenset()

    def test_common_factors(self):
        terms = [Var("x") * Var("y"), Var("x") * Var("z")]
        assert common_factor_variables(terms) == {"x"}

    def test_no_common_factor(self):
        terms = [Var("x") * Var("y"), Var("z")]
        assert common_factor_variables(terms) == frozenset()

    def test_read_once_example_14(self):
        # x1y11 + x1y12 has common factor x1.
        terms = [Var("x1") * Var("y11"), Var("x1") * Var("y12")]
        assert common_factor_variables(terms) == {"x1"}


class TestDivision:
    def test_divide_variable_by_itself(self):
        assert divide_by_variable(Var("x"), "x") == ONE

    def test_divide_product(self):
        expr = sprod([Var("x"), Var("y")])
        assert divide_by_variable(expr, "x") == Var("y")

    def test_divide_removes_single_occurrence(self):
        expr = sprod([Var("x"), Var("x"), Var("y")])
        result = divide_by_variable(expr, "x")
        assert result == sprod([Var("x"), Var("y")])

    def test_divide_tensor(self):
        expr = tensor(Var("x") * Var("y"), MConst(SUM, 5))
        result = divide_by_variable(expr, "x")
        assert result == tensor(Var("y"), MConst(SUM, 5))

    def test_divide_by_non_factor_raises(self):
        with pytest.raises(CompilationError):
            divide_by_variable(Var("x"), "y")
        with pytest.raises(CompilationError):
            divide_by_variable(sprod([Var("x"), Var("y")]), "z")

    def test_divide_sum_raises(self):
        with pytest.raises(CompilationError):
            divide_by_variable(ssum([Var("x"), Var("y")]), "x")
