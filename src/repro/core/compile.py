"""Algorithm 1: compiling expressions into decomposition trees.

The compiler repeatedly applies six decomposition rules to an input
semiring or semimodule expression (Section 5):

1. split a sum into **independent** summands (``⊕``);
2. split a product into independent factors (``⊙``);
3. split a scalar action ``Φ ⊗ α`` with independent sides (``⊗``);
4. split a comparison ``[Φ θ Ψ]`` with independent sides (``[θ]``);
5. *(factorisation)* extract a variable occurring as a common
   multiplicative factor of every summand — the algebraic rewriting that
   recognises read-once expressions;
6. otherwise, eliminate one variable by **Shannon expansion** into
   mutually exclusive branches (``⊔ₓ``), choosing by default a variable
   with the most occurrences (the paper's heuristic).

Rules 1-5 run in polynomial time; rule 6 is the potential exponential
blow-up, which the tractable query classes of Section 6 never trigger.
The compiler memoises structurally equal sub-expressions, so repeated
sub-problems across Shannon branches compile once and the resulting
"tree" is a DAG.
"""

from __future__ import annotations

from operator import add as operator_add
from typing import Callable

from repro.algebra.conditions import Compare
from repro.algebra.expressions import (
    Expr,
    Prod,
    SConst,
    Sum,
    Var,
    count_occurrences,
    ssum,
    sprod,
)
from repro.algebra.semimodule import AggSum, Tensor, aggsum
from repro.algebra.semiring import BOOLEAN, Semiring
from repro.algebra.simplify import Normalizer
from repro.algebra.valuation import evaluate
from repro.core import decompose
from repro.core.dtree import (
    CompareNode,
    CompileContext,
    ConstLeaf,
    DTree,
    MPlusNode,
    MutexNode,
    PlusNode,
    TensorNode,
    TimesNode,
    VarLeaf,
)
from repro.core.pruning import prune
from repro.errors import CompilationError
from repro.prob.distribution import Distribution
from repro.prob.variables import VariableRegistry
from repro.resilience.deadline import check_deadline

__all__ = [
    "Compiler",
    "compile_expression",
    "distribution_task",
    "HEURISTICS",
]


def _most_occurrences(expr: Expr, candidates: frozenset, counts=None) -> str:
    """The paper's default: eliminate a variable with the most occurrences."""
    if counts is None:
        counts = count_occurrences(expr)
    return max(candidates, key=lambda name: (counts.get(name, 0), name))


def _fewest_occurrences(expr: Expr, candidates: frozenset, counts=None) -> str:
    """Ablation heuristic: eliminate a variable with the fewest occurrences."""
    if counts is None:
        counts = count_occurrences(expr)
    return min(candidates, key=lambda name: (counts.get(name, 0), name))


def _lexicographic(expr: Expr, candidates: frozenset, counts=None) -> str:
    """Ablation heuristic: eliminate the lexicographically first variable."""
    return min(candidates)


#: Pluggable Shannon-expansion variable-choice heuristics.
HEURISTICS: dict[str, Callable[[Expr, frozenset], str]] = {
    "most-occurrences": _most_occurrences,
    "fewest-occurrences": _fewest_occurrences,
    "lexicographic": _lexicographic,
}


class Compiler:
    """Compiles expressions over a fixed probability space into d-trees.

    Parameters
    ----------
    registry:
        Distributions of the independent random variables.
    semiring:
        Target semiring of the valuations (Boolean for set semantics,
        naturals for bag semantics).
    heuristic:
        Shannon variable-choice strategy; a key of :data:`HEURISTICS` or a
        callable ``(expr, candidate_names) -> name``.
    pruning:
        Apply the Section-5 pruning rules to conditional expressions
        before compilation (on by default).
    max_mutex_nodes:
        Optional safety budget on the number of ``⊔`` nodes created;
        exceeding it raises :class:`CompilationError`.  Used by the
        approximation module to cut compilation short.
    """

    def __init__(
        self,
        registry: VariableRegistry,
        semiring: Semiring = BOOLEAN,
        heuristic: str | Callable = "most-occurrences",
        pruning: bool = True,
        max_mutex_nodes: int | None = None,
    ):
        self.registry = registry
        self.semiring = semiring
        if isinstance(heuristic, str):
            try:
                heuristic = HEURISTICS[heuristic]
            except KeyError:
                raise CompilationError(
                    f"unknown heuristic {heuristic!r}; "
                    f"expected one of {sorted(HEURISTICS)}"
                ) from None
        self.choose_variable = heuristic
        #: Built-in count-based heuristics accept a precomputed
        #: occurrence-count dict (lexicographic never reads counts, so it
        #: stays on the cheap path); user-supplied two-argument callables
        #: keep working unchanged.
        self._heuristic_takes_counts = heuristic in (
            _most_occurrences,
            _fewest_occurrences,
        )
        self.pruning = pruning
        self.max_mutex_nodes = max_mutex_nodes
        self.mutex_nodes_created = 0
        self.context = CompileContext(registry, semiring)
        self._normalizer = Normalizer(semiring)
        self._memo: dict[Expr, DTree] = {}
        self._counts_memo: dict[Expr, dict] = {}
        self._var_bits: dict[str, int] = {}
        self._var_positions: dict[str, int] = {}
        self._mask_memo: dict[Expr, int] = {}

    # -- public API ----------------------------------------------------------

    def compile(self, expr: Expr) -> DTree:
        """Compile ``expr`` into an equivalent d-tree (Proposition 4)."""
        expr = self._normalizer(expr)
        if self.pruning:
            expr = self._normalizer(prune(expr, self.semiring))
        return self._compile(expr)

    def normalize(self, expr: Expr) -> Expr:
        """Semiring-aware normal form of ``expr``.

        Public hook for per-session compilation caches, which key their
        entries on normalized annotations.
        """
        return self._normalizer(expr)

    def distribution(self, expr: Expr) -> Distribution:
        """Compile ``expr`` and compute its probability distribution."""
        return self.compile(expr).distribution(self.context)

    def probability(self, expr: Expr, value=None) -> float:
        """P[expr = value]; ``value`` defaults to the semiring's ``1_S``."""
        if value is None:
            value = self.semiring.one
        return self.distribution(expr)[value]

    # -- Algorithm 1 ----------------------------------------------------------

    def _compile(self, expr: Expr) -> DTree:
        node = self._memo.get(expr)
        if node is None:
            node = self._compile_uncached(expr)
            self._memo[expr] = node
        return node

    def _compile_uncached(self, expr: Expr) -> DTree:
        # Rule 0: variable-free expressions evaluate to constants.
        if not expr.variables:
            return ConstLeaf(evaluate(expr, {}, self.semiring))
        handler = self._DISPATCH.get(type(expr))
        if handler is None:
            raise CompilationError(f"cannot compile expression {expr!r}")
        return handler(self, expr)

    def _compile_var(self, expr: Var) -> DTree:
        return VarLeaf(expr.name)

    def _variable_mask(self, expr: Expr) -> int:
        """The expression's variable set as a bit mask (memoised).

        Bits are assigned to variable names on first sight.  Masks turn
        the per-decomposition connectivity analysis into integer
        intersections, and the memo is shared across Shannon branches —
        which reuse almost all of their summands.
        """
        mask = self._mask_memo.get(expr)
        if mask is None:
            if type(expr) is Var:
                bits = self._var_bits
                bit = bits.get(expr.name)
                if bit is None:
                    bit = 1 << len(bits)
                    bits[expr.name] = bit
                mask = bit
            else:
                mask = 0
                for child in expr.children:
                    if child._vars:
                        mask |= self._variable_mask(child)
            self._mask_memo[expr] = mask
        return mask

    def _independent_groups(self, exprs) -> list[list[Expr]]:
        """Mask-based connected components, ordered like
        :func:`repro.core.decompose.independent_groups`.

        The common case during Shannon expansion is a single connected
        component, which costs one integer AND per summand here.
        """
        components: list[list] = []  # [mask, (index, expr), ...]
        for index, expr in enumerate(exprs):
            if not expr._vars:
                components.append([0, (index, expr)])
                continue
            mask = self._variable_mask(expr)
            first = None
            i = 0
            while i < len(components):
                component = components[i]
                if component[0] & mask:
                    if first is None:
                        first = component
                        component[0] |= mask
                        component.append((index, expr))
                        i += 1
                    else:  # expr bridges two components: merge them
                        first[0] |= component[0]
                        first.extend(component[1:])
                        del components[i]
                else:
                    i += 1
            if first is None:
                components.append([mask, (index, expr)])
        groups = []
        for component in components:
            members = component[1:]
            members.sort()
            groups.append([expr for _, expr in members])
        return groups

    def _compile_sum(self, expr: Sum) -> DTree:
        groups = self._independent_groups(expr.children)
        if len(groups) > 1:  # Rule 1: independent summands.
            return PlusNode(self._compile(ssum(group)) for group in groups)
        factored = self._try_factor_sum(expr.children, is_module=False)
        if factored is not None:
            return factored
        return self._shannon(expr)

    def _compile_prod(self, expr: Prod) -> DTree:
        groups = self._independent_groups(expr.children)
        if len(groups) > 1:  # Rule 2: independent factors.
            return TimesNode(self._compile(sprod(group)) for group in groups)
        return self._shannon(expr)

    def _compile_aggsum(self, expr: AggSum) -> DTree:
        groups = self._independent_groups(expr.children)
        if len(groups) > 1:  # Rule 1 for semimodule sums.
            return MPlusNode(
                expr.monoid,
                (self._compile(aggsum(expr.monoid, group)) for group in groups),
            )
        factored = self._try_factor_sum(expr.children, is_module=True, monoid=expr.monoid)
        if factored is not None:
            return factored
        return self._shannon(expr)

    def _compile_tensor(self, expr: Tensor) -> DTree:
        if not (expr.phi.variables & expr.arg.variables):  # Rule 3.
            return TensorNode(
                expr.monoid, self._compile(expr.phi), self._compile(expr.arg)
            )
        return self._shannon(expr)

    def _compile_compare(self, expr: Compare) -> DTree:
        if not (expr.left.variables & expr.right.variables):  # Rule 4.
            return CompareNode(
                expr.op, self._compile(expr.left), self._compile(expr.right)
            )
        return self._shannon(expr)

    def _try_factor_sum(self, terms, *, is_module: bool, monoid=None) -> DTree | None:
        """Rule 5: extract a common multiplicative factor from a sum.

        Rewrites ``x·Φ₁ + ... + x·Φₙ`` as ``x ⊙ (Σ Φᵢ)`` (resp. as
        ``x ⊗ (Σ αᵢ)`` for semimodule sums, using the semimodule law
        ``(s₁·s₂) ⊗ m = s₁ ⊗ (s₂ ⊗ m)``).  Only applies when the residual
        sum no longer mentions the extracted variable.
        """
        common = decompose.common_factor_variables(terms)
        for name in sorted(common):
            residuals = [decompose.divide_by_variable(t, name) for t in terms]
            if is_module:
                residual_sum = self._normalizer(aggsum(monoid, residuals))
            else:
                residual_sum = self._normalizer(ssum(residuals))
            if name in residual_sum.variables:
                continue  # e.g. x·x·y: dividing once does not detach x.
            var_tree = self._compile(Var(name))
            rest_tree = self._compile(residual_sum)
            if is_module:
                return TensorNode(monoid, var_tree, rest_tree)
            return TimesNode((var_tree, rest_tree))
        return None

    def _occurrence_counts(self, expr: Expr) -> tuple:
        """Memoised per-node occurrence counts, as a position-indexed tuple.

        Shannon branches share almost all their subexpressions with their
        siblings, so a bottom-up merge over the expression DAG turns the
        per-⊔-node O(|Φ|) counting walk into a handful of lookups.  Index
        positions are assigned per variable name on first sight
        (``_var_positions``); tuples may be shorter than the full variable
        count when a subexpression predates later variables.
        """
        cached = self._counts_memo.get(expr)
        if cached is None:
            if type(expr) is Var:
                positions = self._var_positions
                position = positions.get(expr.name)
                if position is None:
                    position = len(positions)
                    positions[expr.name] = position
                cached = (0,) * position + (1,)
            else:
                cached = ()
                for child in expr.children:
                    if not child._vars:
                        continue
                    child_counts = self._occurrence_counts(child)
                    gap = len(child_counts) - len(cached)
                    if gap > 0:
                        cached = cached + (0,) * gap
                    elif gap < 0:
                        child_counts = child_counts + (0,) * -gap
                    cached = tuple(map(operator_add, cached, child_counts))
            self._counts_memo[expr] = cached
        return cached

    def _shannon(self, expr: Expr) -> DTree:
        """Rule 6: mutually exclusive expansion ``⊔ₓ`` (Eq. 10)."""
        # Rule 6 is the only potentially exponential rule, so the ⊔-node
        # loop is where a compile that will never finish spends its time:
        # the ambient-deadline checkpoint lives here (one ContextVar read
        # per ⊔-node when no deadline is active).
        check_deadline("exact compilation")
        if self.max_mutex_nodes is not None and (
            self.mutex_nodes_created >= self.max_mutex_nodes
        ):
            raise CompilationError(
                f"compilation budget of {self.max_mutex_nodes} ⊔-nodes exhausted"
            )
        self.mutex_nodes_created += 1
        if self._heuristic_takes_counts:
            counts_list = self._occurrence_counts(expr)
            positions = self._var_positions
            bound = len(counts_list)
            counts = {}
            for candidate in expr.variables:
                position = positions.get(candidate)
                if position is not None and position < bound:
                    counts[candidate] = counts_list[position]
            name = self.choose_variable(expr, expr.variables, counts)
        else:
            name = self.choose_variable(expr, expr.variables)
        branches = []
        for value, prob in sorted(
            self.registry[name].items(), key=lambda kv: repr(kv[0])
        ):
            constant = SConst(int(value))
            restricted = self._normalizer.restrict(expr, name, constant)
            branches.append((value, prob, self._compile(restricted)))
        return MutexNode(name, branches)


#: Exact-type dispatch table for :meth:`Compiler._compile_uncached` — one
#: dict lookup instead of an isinstance chain on the hottest entry point.
Compiler._DISPATCH = {
    Var: Compiler._compile_var,
    Sum: Compiler._compile_sum,
    Prod: Compiler._compile_prod,
    AggSum: Compiler._compile_aggsum,
    Tensor: Compiler._compile_tensor,
    Compare: Compiler._compile_compare,
}


def compile_expression(
    expr: Expr,
    registry: VariableRegistry,
    semiring: Semiring = BOOLEAN,
    **kwargs,
) -> DTree:
    """One-shot convenience wrapper around :class:`Compiler`."""
    return Compiler(registry, semiring, **kwargs).compile(expr)


def distribution_task(context, annotations):
    """Process-pool task: compile a chunk of annotations to distributions.

    The parallel seam of the exact engines (see
    :meth:`repro.engine.sprout.SproutEngine.run`): independent result-row
    annotations — per-group aggregates, multi-tuple answers — compile
    concurrently, one chunk per task.  ``context`` is the shared
    ``(registry, semiring, compiler_options)`` triple; the chunk shares
    one :class:`Compiler`, so overlapping annotations *within* a chunk
    still share d-tree memo entries.  Compilation is deterministic, so
    any chunking (and any worker count) yields identical distributions.

    Returns ``(distributions, stats_delta)``; the caller merges the
    distributions into the session's
    :class:`~repro.engine.base.CompilationCache` and the stats delta into
    the run diagnostics.
    """
    registry, semiring, options = context
    compiler = Compiler(registry, semiring, **options)
    distributions = [compiler.distribution(expr) for expr in annotations]
    return distributions, {"mutex_nodes": compiler.mutex_nodes_created}
