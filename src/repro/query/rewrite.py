"""Query evaluation step I: computing result tuples (Section 4, Figure 4).

Evaluating a ``Q`` query on a pvc-database produces a pvc-table whose
annotations and semimodule values are *constructed symbolically*:

* **joint use** of tuples (product/join) multiplies annotations in the
  semiring;
* **alternative use** (projection/union) adds annotations;
* **selection** on concrete values filters rows; selection involving
  semimodule expressions multiplies the conditional expression ``[A θ B]``
  into the annotation;
* **aggregation** ``$`` builds semimodule expressions
  ``Γ = Σ_AGG (Φ ⊗ B)`` per group (``Σ_SUM (Φ ⊗ 1)`` for COUNT) and
  annotates grouped tuples with the non-emptiness guard ``[Σ Φ ≠ 0_K]``
  (grouped case) or ``1_K`` (aggregation without grouping).

The paper phrases this step as a rewriting ``⟦·⟧`` into SQL with custom
aggregate operators; this module implements the same construction as a
direct interpreter over :class:`~repro.db.pvc_table.PVCTable`.  Both read
the same rules off Figure 4; the interpreter form avoids dragging a SQL
engine into the library while constructing identical expressions.
"""

from __future__ import annotations

from typing import Mapping

from repro.algebra.conditions import compare
from repro.algebra.expressions import ONE, ZERO, SemiringExpr, sprod, ssum
from repro.algebra.monoid import COUNT, SUM
from repro.algebra.semimodule import MConst, ModuleExpr, aggsum, tensor
from repro.db.pvc_table import PVCDatabase, PVCRow, PVCTable
from repro.db.schema import Schema
from repro.errors import QueryValidationError
from repro.query.ast import (
    BaseRelation,
    Extend,
    GroupAgg,
    Product,
    Project,
    Query,
    Select,
    Union,
)
from repro.query.validate import validate_query

__all__ = ["evaluate_query"]


def evaluate_query(query: Query, db: PVCDatabase) -> PVCTable:
    """Evaluate a ``Q`` query on a pvc-database, per Figure 4.

    The query is validated against Definition 5 first.  The result is a
    pvc-table of size polynomial in the database size (Theorem 1.2).
    """
    catalog = {name: table.schema for name, table in db.tables.items()}
    validate_query(query, catalog)
    return _Evaluator(db, catalog).evaluate(query)


class _Evaluator:
    def __init__(self, db: PVCDatabase, catalog: Mapping[str, Schema]):
        self.db = db
        self.catalog = catalog

    def evaluate(self, query: Query) -> PVCTable:
        if isinstance(query, BaseRelation):
            return self._base(query)
        if isinstance(query, Extend):
            return self._extend(query)
        if isinstance(query, Select):
            return self._select(query)
        if isinstance(query, Project):
            return self._project(query)
        if isinstance(query, Product):
            return self._product(query)
        if isinstance(query, Union):
            return self._union(query)
        if isinstance(query, GroupAgg):
            return self._group_agg(query)
        raise QueryValidationError(f"cannot evaluate query node {query!r}")

    def _base(self, query: BaseRelation) -> PVCTable:
        # A pvc-table represents a *set* of tuples (Definition 6); rows
        # stored with identical values are alternatives for one tuple and
        # merge by annotation summation, exactly as under projection.
        stored = self.db[query.name]
        return _merge_duplicates(
            stored.schema, ((row.values, row.annotation) for row in stored)
        )

    def _extend(self, query: Extend) -> PVCTable:
        child = self.evaluate(query.child)
        index = child.schema.index(query.source)
        schema = child.schema.extend(
            query.target, aggregation=child.schema.is_aggregation(query.source)
        )
        result = PVCTable(schema)
        for row in child:
            result.add(row.values + (row.values[index],), row.annotation)
        return result

    def _select(self, query: Select) -> PVCTable:
        if isinstance(query.child, Product):
            # Selections over products are evaluated as hash equijoins —
            # the physical plan a relational engine (the paper's
            # PostgreSQL substrate) would pick.  Annotation construction
            # is unchanged: joint use still multiplies in the semiring.
            return self._select_over_product(query)
        child = self.evaluate(query.child)
        return self._filter(child, query.predicate)

    def _filter(self, child: PVCTable, predicate) -> PVCTable:
        result = PVCTable(child.schema)
        for row in child:
            outcome = predicate.evaluate(row.value_dict(child.schema))
            if outcome is False:
                continue
            if outcome is True:
                result.add(row.values, row.annotation)
            else:
                # Symbolic condition: Φ ·_K [A θ B] (Figure 4, σ rule).
                result.add(row.values, sprod([row.annotation, outcome]))
        return result

    def _select_over_product(self, query: Select) -> PVCTable:
        from repro.query.predicates import AttrRef, Comparison, conj

        leaves: list[PVCTable] = []

        def flatten(node: Query):
            if isinstance(node, Product):
                flatten(node.left)
                flatten(node.right)
            else:
                leaves.append(self.evaluate(node))

        flatten(query.child)

        # Partition the conjunction: per-leaf atoms apply locally, concrete
        # attribute equalities across leaves drive hash joins, the rest is
        # evaluated on the joined rows.
        local: list[list] = [[] for _ in leaves]
        join_atoms: list[Comparison] = []
        residual: list[Comparison] = []
        for atom in query.predicate.atoms():
            homes = [
                i
                for i, leaf in enumerate(leaves)
                if atom.attributes() <= set(leaf.schema.attributes)
            ]
            if homes:
                local[homes[0]].append(atom)
            elif _is_hash_joinable(atom, leaves):
                join_atoms.append(atom)
            else:
                residual.append(atom)

        tables = [
            self._filter(leaf, conj(*atoms)) if atoms else leaf
            for leaf, atoms in zip(leaves, local)
        ]
        joined = _greedy_hash_join(tables, join_atoms)
        if residual:
            joined = self._filter(joined, conj(*residual))
        return _reorder_columns(joined, query.child.schema(self.catalog))

    def _project(self, query: Project) -> PVCTable:
        child = self.evaluate(query.child)
        indices = [child.schema.index(a) for a in query.attributes]
        schema = child.schema.project(query.attributes)
        return _merge_duplicates(
            schema,
            ((tuple(row.values[i] for i in indices), row.annotation) for row in child),
        )

    def _product(self, query: Product) -> PVCTable:
        left = self.evaluate(query.left)
        right = self.evaluate(query.right)
        schema = left.schema.concat(right.schema)
        result = PVCTable(schema)
        for left_row in left:
            if left_row.annotation.is_zero():
                continue
            for right_row in right:
                result.add(
                    left_row.values + right_row.values,
                    sprod([left_row.annotation, right_row.annotation]),
                )
        return result

    def _union(self, query: Union) -> PVCTable:
        left = self.evaluate(query.left)
        right = self.evaluate(query.right)
        schema = query.schema(self.catalog)
        rows = [(row.values, row.annotation) for row in left]
        rows += [(row.values, row.annotation) for row in right]
        return _merge_duplicates(schema, rows)

    def _group_agg(self, query: GroupAgg) -> PVCTable:
        child = self.evaluate(query.child)
        group_indices = [child.schema.index(a) for a in query.groupby]
        agg_indices = [
            None if spec.attribute is None else child.schema.index(spec.attribute)
            for spec in query.aggregations
        ]
        schema = query.schema(self.catalog)

        groups: dict[tuple, list[PVCRow]] = {}
        for row in child:
            if row.annotation.is_zero():
                continue
            key = tuple(row.values[i] for i in group_indices)
            groups.setdefault(key, []).append(row)
        if not query.groupby and not groups:
            groups[()] = []  # $∅ always yields one tuple (Figure 4).

        result = PVCTable(schema)
        for key, rows in groups.items():
            values = list(key)
            for spec, index in zip(query.aggregations, agg_indices):
                values.append(self._gamma(spec, index, rows))
            if query.groupby:
                # Non-emptiness guard [Σ_K Φ ≠ 0_K].
                annotation = compare(
                    ssum(row.annotation for row in rows), "!=", ZERO
                )
            else:
                annotation = ONE
            result.add(tuple(values), annotation)
        return result

    def _gamma(self, spec, index, rows) -> ModuleExpr:
        """``Γ = Σ_AGG (Φ ⊗ B)``, resp. ``Σ_SUM (Φ ⊗ 1)`` for COUNT."""
        monoid = SUM if spec.monoid == COUNT else spec.monoid
        terms = []
        for row in rows:
            if index is None or spec.monoid == COUNT:
                value = 1
            else:
                value = row.values[index]
                if isinstance(value, ModuleExpr):
                    raise QueryValidationError(
                        f"cannot aggregate over semimodule values in "
                        f"attribute {spec.attribute!r}"
                    )
            terms.append(tensor(row.annotation, MConst(monoid, value)))
        return aggsum(monoid, terms)


def _reorder_columns(table: PVCTable, schema: Schema) -> PVCTable:
    """Restore the declared attribute order after a greedy join."""
    if table.schema.attributes == schema.attributes:
        return table
    indices = [table.schema.index(a) for a in schema.attributes]
    result = PVCTable(schema)
    for row in table:
        result.add(tuple(row.values[i] for i in indices), row.annotation)
    return result


def _is_hash_joinable(atom, leaves) -> bool:
    """Equality between concrete (non-aggregation) attributes of two leaves."""
    from repro.query.predicates import AttrRef

    if atom.op.symbol != "=":
        return False
    if not (isinstance(atom.left, AttrRef) and isinstance(atom.right, AttrRef)):
        return False
    for name in (atom.left.name, atom.right.name):
        for leaf in leaves:
            if name in leaf.schema and leaf.schema.is_aggregation(name):
                return False
    return True


def _greedy_hash_join(tables: list[PVCTable], join_atoms: list) -> PVCTable:
    """Join the tables, preferring hash joins over connecting equalities.

    Greedily picks the smallest table, then repeatedly hash-joins it with a
    table connected by at least one pending equality atom; disconnected
    tables fall back to cartesian products (smallest first).
    """
    remaining = list(tables)
    pending = list(join_atoms)
    remaining.sort(key=len)
    current = remaining.pop(0)

    def applicable(candidate: PVCTable):
        atoms = []
        for atom in pending:
            names = {atom.left.name, atom.right.name}
            here = set(current.schema.attributes)
            there = set(candidate.schema.attributes)
            if len(names & here) == 1 and len(names & there) == 1:
                atoms.append(atom)
        return atoms

    while remaining:
        best_index, best_atoms = None, []
        for index, candidate in enumerate(remaining):
            atoms = applicable(candidate)
            if atoms and (best_index is None or len(candidate) < len(remaining[best_index])):
                best_index, best_atoms = index, atoms
        if best_index is None:
            best_index = min(range(len(remaining)), key=lambda i: len(remaining[i]))
        candidate = remaining.pop(best_index)
        current = _hash_join(current, candidate, best_atoms)
        for atom in best_atoms:
            pending.remove(atom)
    if pending:
        # Equalities whose sides ended up in the same table (e.g. via a
        # chain of joins): apply as an ordinary filter.
        from repro.query.predicates import conj

        filtered = PVCTable(current.schema)
        predicate = conj(*pending)
        for row in current:
            if predicate.evaluate(row.value_dict(current.schema)) is True:
                filtered.add(row.values, row.annotation)
        current = filtered
    return current


def _hash_join(left: PVCTable, right: PVCTable, atoms: list) -> PVCTable:
    """Hash join on equality atoms; cartesian product when none apply."""
    schema = left.schema.concat(right.schema)
    result = PVCTable(schema)
    if not atoms:
        for left_row in left:
            for right_row in right:
                result.add(
                    left_row.values + right_row.values,
                    sprod([left_row.annotation, right_row.annotation]),
                )
        return result
    left_keys, right_keys = [], []
    for atom in atoms:
        if atom.left.name in left.schema:
            left_keys.append(left.schema.index(atom.left.name))
            right_keys.append(right.schema.index(atom.right.name))
        else:
            left_keys.append(left.schema.index(atom.right.name))
            right_keys.append(right.schema.index(atom.left.name))
    buckets: dict[tuple, list] = {}
    for row in right:
        key = tuple(row.values[i] for i in right_keys)
        buckets.setdefault(key, []).append(row)
    for left_row in left:
        key = tuple(left_row.values[i] for i in left_keys)
        for right_row in buckets.get(key, ()):
            result.add(
                left_row.values + right_row.values,
                sprod([left_row.annotation, right_row.annotation]),
            )
    return result


def _merge_duplicates(schema: Schema, rows) -> PVCTable:
    """Group identical value tuples, summing their annotations in ``K``."""
    merged: dict[tuple, list[SemiringExpr]] = {}
    order: list[tuple] = []
    for values, annotation in rows:
        if annotation.is_zero():
            continue
        if values not in merged:
            order.append(values)
            merged[values] = []
        merged[values].append(annotation)
    result = PVCTable(schema)
    for values in order:
        result.add(values, ssum(merged[values]))
    return result
