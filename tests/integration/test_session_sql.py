"""Session.sql end-to-end: every supported SQL fragment vs the oracle.

For each fragment the SQL front-end supports (projection, selection on
numbers and strings, joins, grouped COUNT/MIN/SUM, global aggregates, and
scalar subqueries), the probabilities produced through ``Session.sql``
must match brute-force possible-world enumeration exactly.
"""

import pytest

from repro import NaiveEngine, connect, parse_sql

FRAGMENTS = [
    "SELECT category FROM products",
    "SELECT pid FROM products WHERE price <= 300",
    "SELECT pid FROM products WHERE category = 'laptop'",
    "SELECT pid, category FROM products WHERE price >= 250 AND category = 'laptop'",
    "SELECT category, quantity FROM products, stock WHERE pid = sid",
    "SELECT category, COUNT(*) AS n FROM products GROUP BY category",
    "SELECT category, MIN(price) AS cheapest FROM products GROUP BY category",
    "SELECT category, MAX(price) AS priciest FROM products GROUP BY category",
    "SELECT category, SUM(price) AS total FROM products GROUP BY category",
    "SELECT SUM(price) AS total FROM products",
    "SELECT COUNT(*) AS n FROM stock",
    "SELECT sid FROM stock WHERE quantity >= (SELECT MIN(price) FROM products)",
    "SELECT pid FROM products WHERE price <= (SELECT MAX(quantity) FROM stock)",
]


@pytest.fixture
def session():
    s = connect(engine="sprout")
    products = s.table("products", ["pid", "category", "price"])
    for pid, category, price, p in [
        (1, "printer", 100, 0.8),
        (2, "printer", 250, 0.5),
        (3, "laptop", 900, 0.6),
        (4, "laptop", 1400, 0.3),
    ]:
        products.insert((pid, category, price), p=p)
    stock = s.table("stock", ["sid", "quantity"])
    for sid, quantity, p in [(1, 5, 0.9), (3, 2, 0.7)]:
        stock.insert((sid, quantity), p=p)
    return s


@pytest.mark.parametrize("sql", FRAGMENTS)
def test_session_sql_matches_possible_worlds_oracle(session, sql):
    compiled = session.sql(sql).tuple_probabilities()
    oracle = NaiveEngine(session.db).tuple_probabilities(parse_sql(sql))
    assert set(compiled) == set(oracle), sql
    for key in oracle:
        assert compiled[key] == pytest.approx(oracle[key]), (sql, key)


@pytest.mark.parametrize(
    "sql",
    [
        "SELECT category FROM products",
        "SELECT category, COUNT(*) AS n FROM products GROUP BY category",
    ],
)
def test_session_sql_naive_engine_route(session, sql):
    """The naive adapter reachable through the same sql() front door."""
    via_session = session.sql(sql, engine="naive").tuple_probabilities()
    direct = NaiveEngine(session.db).tuple_probabilities(parse_sql(sql))
    assert via_session == pytest.approx(direct)


def test_session_sql_default_engine_is_exact_here(session):
    # The fixture session pins engine="sprout"; sql() must honour it.
    result = session.sql("SELECT category FROM products")
    assert result.engine == "sprout"
