"""A seeded TPC-H-shaped data generator (dbgen substitute).

The paper's Experiment F runs on tuple-independent TPC-H data at scales up
to 1 GB.  Without the official ``dbgen`` (and at Python speed), this
generator produces databases with the same *structure*:

* the eight TPC-H tables with the official cardinality ratios
  (4 partsupp rows per part, 1-7 lineitems per order, 25 nations over
  5 regions, ...), scaled by a ``scale_factor``;
* key/foreign-key relationships respected, so joins have the same
  fan-outs — which is what keeps "tuple correlations constant" as the
  scale grows (the property Experiment F measures);
* every tuple annotated with a fresh Boolean variable whose probability is
  drawn uniformly from a configurable range (tuple-independence).

The absolute row counts are TPC-H's divided by 1000 (``scale_factor=1``
yields ~10k tuples total), keeping the sweep tractable for a pure-Python
engine while preserving all relative growth.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.db.pvc_table import PVCDatabase, PVCTable
from repro.db.tuple_independent import tuple_independent_table
from repro.algebra.semiring import BOOLEAN
from repro.prob.variables import VariableRegistry
from repro.workloads.tpch.schema import TPCH_SCHEMAS

__all__ = ["TPCHConfig", "generate_tpch", "table_cardinalities"]

_REGIONS = ["AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"]
_SEGMENTS = ["AUTOMOBILE", "BUILDING", "FURNITURE", "HOUSEHOLD", "MACHINERY"]
_TYPES = ["TIN", "NICKEL", "BRASS", "STEEL", "COPPER"]
_RETURN_FLAGS = ["R", "A", "N"]
_LINE_STATUSES = ["O", "F"]

#: Maximum day offset used for order dates (~7 years).
MAX_DATE = 2400


@dataclass(frozen=True)
class TPCHConfig:
    """Generator parameters.

    ``scale_factor`` plays the role of TPC-H's SF; absolute counts are the
    official ones divided by 1000 (see module docstring).
    """

    scale_factor: float = 0.1
    seed: int = 0
    min_probability: float = 0.5
    max_probability: float = 0.95


def table_cardinalities(scale_factor: float) -> dict[str, int]:
    """Row counts per table (TPC-H ratios, scaled)."""
    suppliers = max(3, round(10 * scale_factor))
    parts = max(4, round(200 * scale_factor))
    customers = max(3, round(150 * scale_factor))
    orders = max(5, round(1500 * scale_factor))
    return {
        "region": 5,
        "nation": 25,
        "supplier": suppliers,
        "part": parts,
        "partsupp": 4 * parts,  # TPC-H invariant: 4 suppliers per part
        "customer": customers,
        "orders": orders,
        "lineitem": 4 * orders,  # expected value of 1-7 lines per order
    }


def generate_tpch(config: TPCHConfig) -> PVCDatabase:
    """Generate a tuple-independent TPC-H-shaped pvc-database."""
    rng = random.Random(config.seed)
    counts = table_cardinalities(config.scale_factor)
    registry = VariableRegistry()
    db = PVCDatabase(registry=registry, semiring=BOOLEAN)

    def prob() -> float:
        return rng.uniform(config.min_probability, config.max_probability)

    def build(name: str, rows: list[tuple]) -> PVCTable:
        table = tuple_independent_table(
            TPCH_SCHEMAS[name].attributes,
            [(values, prob()) for values in rows],
            registry,
            prefix=f"{name}_",
        )
        db.add_table(name, table)
        return table

    build("region", [(k, _REGIONS[k]) for k in range(counts["region"])])
    build(
        "nation",
        [(k, f"NATION{k:02d}", k % counts["region"]) for k in range(counts["nation"])],
    )
    build(
        "supplier",
        [
            (k, f"Supplier#{k:05d}", rng.randrange(counts["nation"]))
            for k in range(counts["supplier"])
        ],
    )
    build(
        "customer",
        [
            (
                k,
                f"Customer#{k:06d}",
                rng.randrange(counts["nation"]),
                rng.choice(_SEGMENTS),
            )
            for k in range(counts["customer"])
        ],
    )
    build(
        "part",
        [
            (k, f"Part#{k:06d}", rng.choice(_TYPES), rng.randint(1, 50))
            for k in range(counts["part"])
        ],
    )

    # partsupp: each part is supplied by 4 distinct suppliers.
    suppliers_of: dict[int, list[int]] = {}
    partsupp_rows = []
    for part_key in range(counts["part"]):
        k = min(4, counts["supplier"])
        chosen = rng.sample(range(counts["supplier"]), k)
        suppliers_of[part_key] = chosen
        for supp_key in chosen:
            partsupp_rows.append((part_key, supp_key, rng.randint(100, 1000)))
    build("partsupp", partsupp_rows)

    order_rows = []
    order_dates = {}
    for order_key in range(counts["orders"]):
        date = rng.randrange(MAX_DATE)
        order_dates[order_key] = date
        order_rows.append((order_key, rng.randrange(counts["customer"]), date))
    build("orders", order_rows)

    lineitem_rows = []
    target = counts["lineitem"]
    while len(lineitem_rows) < target:
        order_key = rng.randrange(counts["orders"])
        part_key = rng.randrange(counts["part"])
        supp_key = rng.choice(suppliers_of[part_key])
        quantity = rng.randint(1, 50)
        lineitem_rows.append(
            (
                order_key,
                part_key,
                supp_key,
                quantity,
                quantity * rng.randint(100, 2000),
                rng.choice(_RETURN_FLAGS),
                rng.choice(_LINE_STATUSES),
                min(MAX_DATE, order_dates[order_key] + rng.randint(1, 120)),
            )
        )
    build("lineitem", lineitem_rows)
    return db
