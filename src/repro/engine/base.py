"""The pluggable ``Engine`` protocol and its adapters.

Every engine in the library answers the same question — ``P[t ∈ answer]``
for a ``Q``-algebra query over a pvc-database — but the seed grew three
incompatible surfaces: the compiled engine returned a rich
:class:`~repro.engine.sprout.QueryResult` while the brute-force and
Monte-Carlo baselines returned raw probability dicts.  This module gives
all three one front door:

* :class:`Engine` — the protocol (``name`` + ``run(query) -> QueryResult``);
* :class:`SproutAdapter` / :class:`NaiveAdapter` / :class:`MonteCarloAdapter`
  — adapters returning the **same** :class:`QueryResult` type;
* :func:`create_engine` — the factory keyed on engine names;
* :func:`select_engine_name` — the ``engine="auto"`` policy: exact
  compilation for queries the Section-6 analysis proves tractable,
  Monte-Carlo fallback (with a warning and a sample budget) otherwise;
* :class:`CompilationCache` — a shared distribution cache keyed on
  normalized annotations, so repeated and overlapping rows across runs
  never recompile the same d-tree.
"""

from __future__ import annotations

import time
import warnings
from typing import Protocol, runtime_checkable

from repro.algebra.expressions import ONE, Expr
from repro.core.compile import Compiler
from repro.db.pvc_table import PVCDatabase
from repro.engine.montecarlo import MonteCarloEngine
from repro.engine.naive import NaiveEngine
from repro.engine.sprout import QueryResult, ResultRow, SproutEngine
from repro.errors import QueryValidationError
from repro.prob.distribution import Distribution
from repro.query.ast import Query
from repro.query.tractability import (
    Classification,
    classify_query,
    tuple_independent_relations,
)

__all__ = [
    "Engine",
    "ENGINE_NAMES",
    "CompilationCache",
    "SproutAdapter",
    "NaiveAdapter",
    "MonteCarloAdapter",
    "create_engine",
    "select_engine_name",
]

#: The registered engine names, in preference order.
ENGINE_NAMES = ("sprout", "naive", "montecarlo")


@runtime_checkable
class Engine(Protocol):
    """An engine answers queries on a pvc-database with a QueryResult."""

    name: str

    def run(self, query: Query, **options) -> QueryResult:
        """Evaluate ``query`` and return rows with probabilities."""
        ...


class CompilationCache:
    """Per-session distribution cache keyed on normalized annotations.

    Wraps one persistent :class:`Compiler`, whose d-tree memo already
    shares work between *overlapping* annotations; this cache additionally
    short-circuits *repeated* annotations (the same normalized expression
    across rows, runs, or ``pretty()``/accessor calls) to a stored
    :class:`Distribution` without touching the compiler at all.

    Duck-types the ``distribution``/``semiring`` surface of
    :class:`Compiler`, so it can stand in wherever result rows expect a
    distribution source.
    """

    def __init__(self, compiler: Compiler):
        self.compiler = compiler
        self.hits = 0
        self.misses = 0
        self._distributions: dict[Expr, Distribution] = {}

    @property
    def semiring(self):
        return self.compiler.semiring

    @property
    def registry(self):
        return self.compiler.registry

    def distribution(self, expr: Expr) -> Distribution:
        key = self.compiler.normalize(expr)
        cached = self._distributions.get(key)
        if cached is None:
            self.misses += 1
            cached = self.compiler.distribution(key)
            self._distributions[key] = cached
        else:
            self.hits += 1
        return cached

    def compile(self, expr: Expr):
        return self.compiler.compile(expr)

    def __len__(self) -> int:
        return len(self._distributions)

    def __repr__(self):
        return (
            f"CompilationCache({len(self)} entries, "
            f"{self.hits} hits, {self.misses} misses)"
        )


class SproutAdapter:
    """The paper's two-step pipeline behind the :class:`Engine` protocol."""

    name = "sprout"

    def __init__(self, db: PVCDatabase, distribution_source=None, **compiler_options):
        self.engine = SproutEngine(
            db, distribution_source=distribution_source, **compiler_options
        )

    def run(self, query: Query, **options) -> QueryResult:
        result = self.engine.run(query, **options)
        result.engine = self.name
        return result


def _concrete_rows(schema, probabilities, compare_key=repr):
    """Sorted ResultRows for engines reporting concrete tuples only."""
    return [
        ResultRow(schema, values, ONE, None, _probability=probability)
        for values, probability in sorted(
            probabilities.items(), key=lambda kv: compare_key(kv[0])
        )
    ]


class NaiveAdapter:
    """Possible-worlds enumeration behind the :class:`Engine` protocol.

    Rows carry *concrete* values (aggregates are instantiated per world),
    so there are no symbolic annotations to expose; the probabilities are
    exact and precomputed.
    """

    name = "naive"

    def __init__(self, db: PVCDatabase):
        self.engine = NaiveEngine(db)

    def run(self, query: Query, **options) -> QueryResult:
        if options:
            raise QueryValidationError(
                f"naive engine takes no run options, got {sorted(options)}"
            )
        start = time.perf_counter()
        probabilities = self.engine.tuple_probabilities(query)
        elapsed = time.perf_counter() - start
        schema = query.schema(self.engine.db.catalog())
        rows = _concrete_rows(schema, probabilities)
        return QueryResult(
            schema, rows, {"enumeration_seconds": elapsed}, engine=self.name
        )


class MonteCarloAdapter:
    """MCDB-style sampling behind the :class:`Engine` protocol."""

    name = "montecarlo"

    def __init__(self, db: PVCDatabase, seed: int | None = None, samples: int = 1000):
        self.engine = MonteCarloEngine(db, seed=seed)
        self.samples = samples

    def run(self, query: Query, samples: int | None = None, **options) -> QueryResult:
        if options:
            raise QueryValidationError(
                f"montecarlo engine takes only a 'samples' run option, got "
                f"{sorted(options)}"
            )
        budget = self.samples if samples is None else samples
        start = time.perf_counter()
        probabilities = self.engine.tuple_probabilities(query, samples=budget)
        elapsed = time.perf_counter() - start
        schema = query.schema(self.engine.db.catalog())
        rows = _concrete_rows(schema, probabilities)
        return QueryResult(
            schema, rows, {"sampling_seconds": elapsed}, engine=self.name
        )


def create_engine(
    name: str,
    db: PVCDatabase,
    *,
    distribution_source=None,
    seed: int | None = None,
    samples: int = 1000,
    **compiler_options,
) -> Engine:
    """Instantiate the engine adapter registered under ``name``."""
    if name == "sprout":
        return SproutAdapter(
            db, distribution_source=distribution_source, **compiler_options
        )
    if name == "naive":
        return NaiveAdapter(db)
    if name == "montecarlo":
        return MonteCarloAdapter(db, seed=seed, samples=samples)
    raise QueryValidationError(
        f"unknown engine {name!r}; expected one of {list(ENGINE_NAMES)} or 'auto'"
    )


def select_engine_name(
    db: PVCDatabase,
    query: Query,
    samples: int = 1000,
    tuple_independent: set[str] | None = None,
) -> tuple[str, Classification]:
    """The ``engine="auto"`` policy (Theorem 3 as a dispatcher).

    Queries the static analysis proves inside ``Q_ind``/``Q_hie`` go to
    exact compilation; everything else falls back to Monte-Carlo sampling
    with a warning — generic compilation may be exponential there.
    ``tuple_independent`` lets callers (the session) pass a cached scan
    instead of re-walking every table row per query.
    """
    if tuple_independent is None:
        tuple_independent = tuple_independent_relations(db)
    classification = classify_query(query, db.catalog(), tuple_independent)
    if classification.tractable:
        return "sprout", classification
    warnings.warn(
        f"query is not known to be tractable "
        f"({'; '.join(classification.reasons)}); falling back to Monte-Carlo "
        f"estimation with {samples} samples — pass engine='sprout' to force "
        f"exact compilation",
        UserWarning,
        stacklevel=3,
    )
    return "montecarlo", classification
