"""Fork/pickle-safety checker for pool call sites.

:class:`~repro.parallel.pool.SharedPool` ships its worker function and
every context/payload object to forked (or spawned) worker processes by
pickling.  Three things break that contract silently and only surface as
runtime ``PicklingError`` (or, worse, as a worker inheriting a lock in a
locked state):

* a worker that is not a plain module-level function — lambdas, nested
  functions and bound methods do not pickle;
* payload/context expressions carrying objects that must not cross a
  process boundary: threading locks/conditions/events, sockets, open
  file handles, ``contextvars`` vars/tokens, and ``Deadline`` instances
  (a deadline is anchored to the parent's monotonic clock, which is not
  meaningful in the child — ship the remaining-seconds float instead);
* the same objects reached through a simple local alias.

The checker recognises the codebase's two pool idioms —
``parallel_pool.execute(worker, context, payloads, ...)`` and
``SharedPool(worker, context, workers, ...)`` — and performs one level
of single-assignment local dataflow, so ``ctx = (..., Deadline(...))``
followed by ``pool.execute(fn, ctx, ...)`` is still caught.  Names it
cannot resolve (parameters, attributes) are assumed safe: this is a
lint for the obvious mistakes, not an escape analysis.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.findings import Finding
from repro.analysis.runner import AnalysisContext, BaseChecker
from repro.analysis.source import SourceModule

__all__ = ["ForkSafetyChecker"]

#: Bare constructor names whose results must not be pickled to a worker.
_UNPICKLABLE_NAMES = frozenset(
    {
        "Lock",
        "RLock",
        "Condition",
        "Event",
        "Semaphore",
        "BoundedSemaphore",
        "Barrier",
        "ContextVar",
        "open",
        "Deadline",
        "current_deadline",
    }
)

#: ``module.attr`` constructor pairs with the same property.
_UNPICKLABLE_ATTRS = frozenset(
    {
        ("threading", "Lock"),
        ("threading", "RLock"),
        ("threading", "Condition"),
        ("threading", "Event"),
        ("threading", "Semaphore"),
        ("threading", "BoundedSemaphore"),
        ("threading", "Barrier"),
        ("socket", "socket"),
        ("contextvars", "ContextVar"),
        ("Deadline", "after"),
        ("deadlines", "current_deadline"),
        ("deadlines", "Deadline"),
    }
)

_FUNCTION_NODES = (ast.FunctionDef, ast.AsyncFunctionDef)


def _unpicklable_reason(call: ast.Call) -> str | None:
    func = call.func
    if isinstance(func, ast.Name) and func.id in _UNPICKLABLE_NAMES:
        return f"{func.id}(...)"
    if isinstance(func, ast.Attribute) and isinstance(func.value, ast.Name):
        pair = (func.value.id, func.attr)
        if pair in _UNPICKLABLE_ATTRS:
            return f"{func.value.id}.{func.attr}(...)"
    return None


class _Scope:
    """One function (or the module body) as a pool-call-site scope."""

    def __init__(self, node, parent: "_Scope | None"):
        self.node = node
        self.parent = parent
        body = node.body if hasattr(node, "body") else []
        self.statements = body
        #: single-assignment locals: name -> assigned expression
        self.bindings: dict[str, ast.expr] = {}
        #: names defined as nested functions / lambdas in this scope
        self.local_callables: dict[str, str] = {}
        counts: dict[str, int] = {}
        for statement in self._walk_own():
            if isinstance(statement, ast.Assign) and len(statement.targets) == 1:
                target = statement.targets[0]
                if isinstance(target, ast.Name):
                    counts[target.id] = counts.get(target.id, 0) + 1
                    self.bindings[target.id] = statement.value
                    if isinstance(statement.value, ast.Lambda):
                        self.local_callables[target.id] = "a lambda"
            elif isinstance(statement, _FUNCTION_NODES) and isinstance(
                node, _FUNCTION_NODES
            ):
                # Only functions nested *inside a function* are
                # unpicklable; module-level defs are the safe case.
                self.local_callables[statement.name] = "a nested function"
        for name, count in counts.items():
            if count > 1:
                self.bindings.pop(name, None)

    def _walk_own(self):
        """Walk this function's statements, not nested functions'."""
        pending = list(self.statements)
        while pending:
            statement = pending.pop()
            yield statement
            if isinstance(statement, _FUNCTION_NODES):
                continue
            for child in ast.iter_child_nodes(statement):
                if isinstance(child, ast.stmt):
                    pending.append(child)
                elif isinstance(child, (ast.excepthandler,)):
                    pending.extend(child.body)

    def resolve(self, name: str) -> ast.expr | None:
        scope: _Scope | None = self
        while scope is not None:
            if name in scope.bindings:
                return scope.bindings[name]
            scope = scope.parent
        return None

    def callable_kind(self, name: str) -> str | None:
        scope: _Scope | None = self
        while scope is not None:
            if name in scope.local_callables:
                return scope.local_callables[name]
            scope = scope.parent
        return None


def _is_pool_call(call: ast.Call) -> str | None:
    """``"execute"`` / ``"SharedPool"`` when ``call`` is a pool site."""
    func = call.func
    if isinstance(func, ast.Name) and func.id == "SharedPool":
        return "SharedPool"
    if isinstance(func, ast.Attribute):
        if func.attr == "SharedPool":
            return "SharedPool"
        if func.attr == "execute" and isinstance(func.value, ast.Name):
            if func.value.id in ("parallel_pool", "pool"):
                return "execute"
    return None


class ForkSafetyChecker(BaseChecker):
    name = "forksafety"
    rules = ("fork-unpicklable-worker", "fork-unpicklable-payload")

    def check_module(
        self, module: SourceModule, context: AnalysisContext
    ) -> Iterator[Finding]:
        yield from self._check_scope(module, module.tree, None)

    def _check_scope(
        self, module: SourceModule, node, parent: _Scope | None
    ) -> Iterator[Finding]:
        scope = _Scope(node, parent)
        for statement in scope._walk_own():
            if isinstance(statement, _FUNCTION_NODES):
                yield from self._check_scope(module, statement, scope)
                continue
            # _walk_own already yields nested statements individually, so
            # examine only the expressions attached to *this* statement —
            # a full ast.walk would re-visit calls once per enclosing
            # statement.
            for child in ast.iter_child_nodes(statement):
                if isinstance(child, (ast.stmt, ast.excepthandler)):
                    continue
                for expr in ast.walk(child):
                    if isinstance(expr, ast.Call):
                        kind = _is_pool_call(expr)
                        if kind is not None:
                            yield from self._check_site(
                                module, expr, kind, scope
                            )

    def _check_site(
        self, module: SourceModule, call: ast.Call, kind: str, scope: _Scope
    ) -> Iterator[Finding]:
        args = call.args
        if not args:
            return
        yield from self._check_worker(module, args[0], scope)
        # execute(worker, context, payloads, ...) ships args 1 and 2;
        # SharedPool(worker, context, workers) ships arg 1 only.
        payload_args = args[1:3] if kind == "execute" else args[1:2]
        for position, payload in enumerate(payload_args):
            role = ("context", "payloads")[position] if kind == "execute" else "context"
            yield from self._check_payload(module, payload, role, scope)

    def _check_worker(
        self, module: SourceModule, worker: ast.expr, scope: _Scope
    ) -> Iterator[Finding]:
        described: str | None = None
        if isinstance(worker, ast.Lambda):
            described = "a lambda"
        elif isinstance(worker, ast.Name):
            described = scope.callable_kind(worker.id)
        elif isinstance(worker, ast.Attribute):
            if isinstance(worker.value, ast.Name) and worker.value.id == "self":
                described = f"the bound method self.{worker.attr}"
        if described is not None:
            yield Finding(
                file=module.path,
                line=worker.lineno,
                rule_id="fork-unpicklable-worker",
                severity="error",
                message=(
                    f"pool worker is {described}; only module-level "
                    f"functions pickle into worker processes"
                ),
            )

    def _check_payload(
        self,
        module: SourceModule,
        payload: ast.expr,
        role: str,
        scope: _Scope,
        depth: int = 0,
    ) -> Iterator[Finding]:
        if depth > 4:
            return
        for node in ast.walk(payload):
            if isinstance(node, ast.Lambda):
                yield Finding(
                    file=module.path,
                    line=node.lineno,
                    rule_id="fork-unpicklable-payload",
                    severity="error",
                    message=(
                        f"pool {role} contains a lambda, which does not "
                        f"pickle into a worker process"
                    ),
                )
            elif isinstance(node, ast.Call):
                reason = _unpicklable_reason(node)
                if reason is not None:
                    yield Finding(
                        file=module.path,
                        line=node.lineno,
                        rule_id="fork-unpicklable-payload",
                        severity="error",
                        message=(
                            f"pool {role} contains {reason}, which must "
                            f"not cross a process boundary (locks, "
                            f"sockets, context vars and Deadline objects "
                            f"do not survive pickling)"
                        ),
                    )
            elif isinstance(node, ast.Name) and node is not payload:
                resolved = scope.resolve(node.id)
                if resolved is not None:
                    yield from self._check_payload(
                        module, resolved, role, scope, depth + 1
                    )
        if isinstance(payload, ast.Name):
            resolved = scope.resolve(payload.id)
            if resolved is not None:
                yield from self._check_payload(
                    module, resolved, role, scope, depth + 1
                )
