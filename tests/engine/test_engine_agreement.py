"""Engine-agreement suite: Sprout vs Naive vs (seeded) MonteCarlo.

All three engines route step I through the shared physical executor; this
suite pins down that they produce identical answer tuples and agreeing
probabilities on a grid of query shapes — including join-reordered
products, optimizer-rewritten trees, and ``Union`` under ``GroupAgg``.
Sprout and Naive are exact and must match to float tolerance; the seeded
Monte-Carlo engine must agree within its sampling error.
"""

import pytest

from repro.algebra import BOOLEAN, Var
from repro.db import PVCDatabase
from repro.engine import MonteCarloEngine, NaiveEngine, SproutEngine
from repro.prob import VariableRegistry
from repro.query import (
    AggSpec,
    GroupAgg,
    Product,
    Project,
    Select,
    Union,
    cmp_,
    conj,
    eq,
    optimize,
    product_of,
    relation,
)

MC_SAMPLES = 4000
MC_TOLERANCE = 0.06


def build_db():
    reg = VariableRegistry()
    db = PVCDatabase(registry=reg, semiring=BOOLEAN)
    r = db.create_table("R", ["a", "u"])
    for i, row in enumerate([(1, 3), (1, 7), (2, 4)]):
        reg.bernoulli(f"r{i}", 0.3 + 0.2 * i)
        r.add(row, Var(f"r{i}"))
    s = db.create_table("S", ["b", "w"])
    for i, row in enumerate([(1, 5), (2, 6)]):
        reg.bernoulli(f"s{i}", 0.5)
        s.add(row, Var(f"s{i}"))
    t = db.create_table("T", ["a", "u"])
    reg.bernoulli("t0", 0.7)
    t.add((2, 9), Var("t0"))
    u = db.create_table("U", ["c", "x"])
    for i, row in enumerate([(1, 2), (2, 8)]):
        reg.bernoulli(f"u{i}", 0.6)
        u.add(row, Var(f"u{i}"))
    return db


def join(pairs, *rels):
    return Select(product_of(*rels), conj(*(eq(x, y) for x, y in pairs)))


QUERIES = {
    "select-project": Project(Select(relation("R"), eq("a", 1)), ["u"]),
    "join": Project(join([("a", "b")], relation("R"), relation("S")), ["a", "w"]),
    "join-reordered": Project(
        join([("a", "b")], relation("S"), relation("R")), ["a", "w"]
    ),
    "three-way-chain": Project(
        Select(
            product_of(relation("R"), relation("S")),
            conj(eq("a", "b"), cmp_("u", "<", "w")),
        ),
        ["u", "w"],
    ),
    "grouped-sum": GroupAgg(relation("R"), ["a"], [AggSpec.of("t", "SUM", "u")]),
    "union-under-groupagg": GroupAgg(
        Union(relation("R"), relation("T")),
        ["a"],
        [AggSpec.of("n", "COUNT"), AggSpec.of("m", "MAX", "u")],
    ),
    "having": Project(
        Select(
            GroupAgg(relation("R"), ["a"], [AggSpec.of("t", "SUM", "u")]),
            cmp_("t", ">=", 5),
        ),
        ["a"],
    ),
    "join-into-groupagg": GroupAgg(
        join([("a", "b")], relation("R"), relation("S")),
        ["b"],
        [AggSpec.of("m", "MIN", "u")],
    ),
}


def exact_probabilities(db, query):
    return NaiveEngine(db).tuple_probabilities(query)


@pytest.mark.parametrize("name", sorted(QUERIES))
class TestExactEnginesAgree:
    def test_sprout_matches_naive(self, name):
        db = build_db()
        query = QUERIES[name]
        exact = exact_probabilities(db, query)
        fast = SproutEngine(db).run(query).tuple_probabilities()
        assert set(exact) == set(fast)
        for key in exact:
            assert fast[key] == pytest.approx(exact[key], abs=1e-9), key

    def test_optimizer_rewrite_matches_naive(self, name):
        db = build_db()
        query = QUERIES[name]
        rewritten = optimize(query, db.catalog())
        exact = exact_probabilities(db, query)
        fast = SproutEngine(db).run(rewritten).tuple_probabilities()
        assert set(exact) == set(fast)
        for key in exact:
            assert fast[key] == pytest.approx(exact[key], abs=1e-9), key


@pytest.mark.parametrize(
    "name",
    [
        "select-project",
        "join",
        "join-reordered",
        "grouped-sum",
        "union-under-groupagg",
    ],
)
class TestMonteCarloAgrees:
    def test_seeded_estimates_within_tolerance(self, name):
        db = build_db()
        query = QUERIES[name]
        exact = exact_probabilities(db, query)
        estimates = MonteCarloEngine(db, seed=7).tuple_probabilities(
            query, samples=MC_SAMPLES
        )
        for key, probability in exact.items():
            assert estimates.get(key, 0.0) == pytest.approx(
                probability, abs=MC_TOLERANCE
            ), (name, key)
        for key in estimates:
            assert key in exact or estimates[key] <= MC_TOLERANCE


class TestJoinOrderInvariance:
    """Permuting the product order never changes the distribution."""

    @pytest.mark.parametrize(
        "order",
        [
            ("R", "S", "U"),
            ("S", "U", "R"),
            ("U", "R", "S"),
            ("U", "S", "R"),
        ],
    )
    def test_permutations_agree(self, order):
        db = build_db()
        pairs = conj(eq("a", "b"), eq("b", "c"))
        query = Project(
            Select(product_of(*(relation(n) for n in order)), pairs),
            ["u", "w", "x"],
        )
        exact = exact_probabilities(db, query)
        fast = SproutEngine(db).run(query).tuple_probabilities()
        assert set(exact) == set(fast)
        for key in exact:
            assert fast[key] == pytest.approx(exact[key], abs=1e-9), key
