"""The approx engine: anytime interval answers with deterministic bounds."""

import pytest

from repro import Var, connect
from repro.engine.approximate import ApproxAdapter
from repro.engine.base import Engine, create_engine
from repro.engine.spec import EvalSpec, ProbInterval
from repro.errors import QueryValidationError


@pytest.fixture
def hard_session():
    """A session whose query is outside Q_ind/Q_hie (correlated rows).

    The annotations are non-read-once (variables shared across factors),
    so the independence rules alone cannot resolve them: real Shannon
    expansions are needed and a tiny budget leaves genuine width.
    """
    s = connect(seed=7)
    for name, p in [("w1", 0.45), ("w2", 0.6), ("w3", 0.3), ("w4", 0.7)]:
        s.registry.bernoulli(name, p)
    w1, w2, w3, w4 = (Var(f"w{i}") for i in (1, 2, 3, 4))
    s.table("W", ["a"])
    s.db.insert("W", (1,), annotation=(w1 + w2) * (w1 + w3) * (w2 + w4))
    s.db.insert("W", (2,), annotation=(w2 + w3) * (w2 + w4) * (w3 + w1))
    s.db.insert("W", (3,), annotation=(w3 + w4) * (w3 + w1))
    return s


def hard_query(s):
    return s.table("W").select("a")


class TestAdapter:
    def test_satisfies_engine_protocol(self, hard_session):
        adapter = hard_session.engine("approx")
        assert isinstance(adapter, Engine)
        assert isinstance(adapter, ApproxAdapter)
        assert isinstance(create_engine("approx", hard_session.db), ApproxAdapter)

    def test_intervals_contain_the_oracle(self, hard_session):
        q = hard_query(hard_session)
        exact = hard_session.run(q, engine="naive").tuple_probabilities()
        result = hard_session.run(q, engine="approx", epsilon=0.01)
        assert result.engine == "approx"
        for row in result:
            interval = row.probability()
            assert isinstance(interval, ProbInterval)
            assert interval.contains(exact[row.values])
            assert interval.width <= 0.01 + 1e-9

    def test_stats_surface(self, hard_session):
        result = hard_session.run(hard_query(hard_session), engine="approx")
        for key in (
            "wall_seconds", "rows", "rounds", "expansions", "converged",
            "max_width", "epsilon",
        ):
            assert key in result.stats
        assert result.stats["converged"] is True
        assert result.timings["rewrite_seconds"] >= 0

    def test_budget_cap_is_honored_but_sound(self, hard_session):
        q = hard_query(hard_session)
        exact = hard_session.run(q, engine="naive").tuple_probabilities()
        result = hard_session.run(
            q, engine="approx", spec=EvalSpec(mode="approx", epsilon=0.0, budget=1)
        )
        assert result.stats["expansions"] <= 1
        assert not result.stats["converged"]
        for row in result:
            assert row.probability().contains(exact[row.values])

    def test_exact_mode_collapses_all_intervals(self, hard_session):
        q = hard_query(hard_session)
        exact = hard_session.run(q, engine="naive").tuple_probabilities()
        result = hard_session.run(q, engine="approx", spec=EvalSpec(mode="exact"))
        for row in result:
            interval = row.probability()
            assert interval.is_point
            assert interval.value == pytest.approx(exact[row.values])

    def test_rejects_sample_spec_and_options(self, hard_session):
        adapter = hard_session.engine("approx")
        q = hard_query(hard_session).build()
        with pytest.raises(QueryValidationError, match="montecarlo"):
            adapter.run(q, spec=EvalSpec(mode="sample"))
        with pytest.raises(QueryValidationError, match="run options"):
            adapter.run(q, compute_probabilities=True)

    def test_rows_keep_symbolic_accessors(self, hard_session):
        result = hard_session.run(hard_query(hard_session), engine="approx")
        exact = hard_session.run(
            hard_query(hard_session), engine="naive"
        ).tuple_probabilities()
        row = next(r for r in result if r.values == (1,))
        # The exact accessors still work (they compile on demand).
        dist = row.annotation_distribution()
        assert 1.0 - dist[False] == pytest.approx(exact[(1,)])


class TestRunIter:
    def test_snapshots_nest_monotonically(self, hard_session):
        q = hard_query(hard_session)
        exact = hard_session.run(q, engine="naive").tuple_probabilities()
        snapshots = list(
            hard_session.run_iter(q, engine="approx", epsilon=1e-6)
        )
        assert snapshots[-1].stats["converged"]
        previous = None
        for snapshot in snapshots:
            current = {
                row.values: row.probability() for row in snapshot
            }
            for values, interval in current.items():
                assert interval.contains(exact[values])
                if previous is not None:
                    assert interval.low >= previous[values].low - 1e-12
                    assert interval.high <= previous[values].high + 1e-12
            previous = current

    def test_snapshots_are_independent_objects(self, hard_session):
        snapshots = list(
            hard_session.run_iter(
                hard_query(hard_session), engine="approx", epsilon=1e-9
            )
        )
        if len(snapshots) > 1:
            first, last = snapshots[0], snapshots[-1]
            assert first.rows[0] is not last.rows[0]

    def test_exact_engine_yields_single_result(self, hard_session):
        snapshots = list(
            hard_session.run_iter(hard_query(hard_session), engine="naive")
        )
        assert len(snapshots) == 1
        assert snapshots[0].engine == "naive"

    def test_top_k_early_termination_loop(self, hard_session):
        q = hard_query(hard_session)
        exact = hard_session.run(q, engine="naive").tuple_probabilities()
        winner = max(exact, key=exact.get)
        for snapshot in hard_session.run_iter(q, engine="approx", epsilon=1e-9):
            top = snapshot.top_k(1)
            if top.stats["top_k_decided"]:
                break
        assert top.stats["top_k_decided"]
        assert top.rows[0].values == winner
