"""Query evaluation step I: computing result tuples (Section 4, Figure 4).

Evaluating a ``Q`` query on a pvc-database produces a pvc-table whose
annotations and semimodule values are *constructed symbolically*:

* **joint use** of tuples (product/join) multiplies annotations in the
  semiring;
* **alternative use** (projection/union) adds annotations;
* **selection** on concrete values filters rows; selection involving
  semimodule expressions multiplies the conditional expression ``[A θ B]``
  into the annotation;
* **aggregation** ``$`` builds semimodule expressions
  ``Γ = Σ_AGG (Φ ⊗ B)`` per group (``Σ_SUM (Φ ⊗ 1)`` for COUNT) and
  annotates grouped tuples with the non-emptiness guard ``[Σ Φ ≠ 0_K]``
  (grouped case) or ``1_K`` (aggregation without grouping).

The construction itself now lives in the three-stage pipeline — logical
optimizer (:mod:`repro.query.optimizer`) → physical planner
(:mod:`repro.query.physical`) → physical executor
(:mod:`repro.query.executor`).  This module is the historical entry point,
kept as a **deprecated** compatibility shim: :func:`evaluate_query` lowers
the query *without* logical rewrites, so the constructed expressions match
the seed's tree-walking interpreter structurally, not just semantically.
Engines go through :func:`repro.query.executor.evaluate` (optimizer on).
"""

from __future__ import annotations

import warnings

from repro.db.pvc_table import PVCDatabase, PVCTable
from repro.query.ast import Query
from repro.query.executor import evaluate

__all__ = ["evaluate_query"]


def evaluate_query(query: Query, db: PVCDatabase) -> PVCTable:
    """Evaluate a ``Q`` query on a pvc-database, per Figure 4.

    The query is validated against Definition 5 first.  The result is a
    pvc-table of size polynomial in the database size (Theorem 1.2).

    .. deprecated::
        Use :func:`repro.query.executor.evaluate` (which applies the
        rule-based optimizer of :mod:`repro.query.optimizer` and executes
        the physical plans of :mod:`repro.query.physical`); pass
        ``optimize=False`` there for this function's unoptimized lowering.
    """
    warnings.warn(
        "repro.query.rewrite.evaluate_query is deprecated; use "
        "repro.query.executor.evaluate (the repro.query.optimizer → "
        "repro.query.physical pipeline), with optimize=False for the "
        "unoptimized lowering",
        DeprecationWarning,
        stacklevel=2,
    )
    return evaluate(query, db, optimize=False)
