"""Decomposition trees (d-trees) — Definition 7 of the paper.

A d-tree is a normal form for semiring and semimodule expressions whose
inner nodes reflect *structural decompositions* of the expression:

* ``⊕`` (:class:`PlusNode` / :class:`MPlusNode`) — sum of **independent**
  sub-expressions (semiring sum resp. monoid sum);
* ``⊙`` (:class:`TimesNode`) — product of independent semiring expressions;
* ``⊗`` (:class:`TensorNode`) — scalar action of an independent semiring
  expression on a semimodule expression;
* ``[θ]`` (:class:`CompareNode`) — comparison of independent expressions;
* ``⊔ₓ`` (:class:`MutexNode`) — partitioning into **mutually exclusive**
  restrictions ``Φ|x←s`` for every value ``s`` with ``P_x[s] ≠ 0``.

Leaves are variables (:class:`VarLeaf`) or constants (:class:`ConstLeaf`).

Given the probability distributions of its leaves, the distribution of
every inner node follows by the convolution equations (4)-(9) and the
mixture equation (10); the distribution of the whole d-tree is computed
bottom-up in one pass (Theorem 2).  Distributions are cached per node, and
because the compiler memoises structurally equal sub-expressions, a "tree"
is in general a DAG whose shared sub-DAGs are evaluated once.
"""

from __future__ import annotations

from typing import Iterator

from repro.algebra.conditions import ComparisonOp
from repro.algebra.monoid import Monoid
from repro.algebra.semiring import Semiring
from repro.errors import CompilationError
from repro.prob import convolution
from repro.prob.distribution import Distribution
from repro.prob.variables import VariableRegistry

__all__ = [
    "CompileContext",
    "DTree",
    "ConstLeaf",
    "VarLeaf",
    "PlusNode",
    "TimesNode",
    "MPlusNode",
    "TensorNode",
    "CompareNode",
    "MutexNode",
]


class CompileContext:
    """Everything a d-tree needs to turn into numbers.

    Bundles the variable registry (leaf distributions) with the concrete
    target semiring, and caches the coerced per-variable distributions.
    """

    def __init__(self, registry: VariableRegistry, semiring: Semiring):
        self.registry = registry
        self.semiring = semiring
        self._var_cache: dict[str, Distribution] = {}

    def var_distribution(self, name: str) -> Distribution:
        """The distribution of variable ``name`` over semiring values."""
        cached = self._var_cache.get(name)
        if cached is None:
            cached = self.registry[name].map(self.semiring.coerce)
            self._var_cache[name] = cached
        return cached


class DTree:
    """Base class of d-tree nodes.

    Nodes are immutable once built; :meth:`distribution` computes and
    caches the node's probability distribution for a given context.
    """

    __slots__ = ("_dist_ctx", "_dist")

    children: tuple = ()

    #: Single-character tag used in pretty-printing and statistics.
    tag: str = "?"

    def distribution(self, ctx: CompileContext) -> Distribution:
        """The probability distribution represented by this node.

        Computed bottom-up per Theorem 2 and cached, so shared sub-DAGs
        are evaluated once per context.
        """
        if getattr(self, "_dist_ctx", None) is ctx:
            return self._dist
        dist = self._compute_distribution(ctx)
        self._dist_ctx = ctx
        self._dist = dist
        return dist

    def _compute_distribution(self, ctx: CompileContext) -> Distribution:
        raise NotImplementedError

    # -- structure ----------------------------------------------------------

    def iter_unique(self) -> Iterator["DTree"]:
        """Yield each distinct node of the DAG exactly once."""
        seen: set[int] = set()
        stack: list[DTree] = [self]
        while stack:
            node = stack.pop()
            if id(node) in seen:
                continue
            seen.add(id(node))
            yield node
            stack.extend(node.children)

    def dag_size(self) -> int:
        """Number of distinct nodes (shared sub-DAGs counted once)."""
        return sum(1 for _ in self.iter_unique())

    def tree_size(self) -> int:
        """Number of nodes of the fully expanded tree."""
        return 1 + sum(child.tree_size() for child in self.children)

    def depth(self) -> int:
        """Length of the longest root-to-leaf path (leaf depth is 1)."""
        if not self.children:
            return 1
        return 1 + max(child.depth() for child in self.children)

    def pretty(self, indent: str = "") -> str:
        """Multi-line indented rendering of the d-tree."""
        lines = [indent + self._label()]
        for child in self.children:
            lines.append(child.pretty(indent + "  "))
        return "\n".join(lines)

    def _label(self) -> str:
        return self.tag

    def __repr__(self):
        return f"<{type(self).__name__} {self._label()} size={self.dag_size()}>"


class ConstLeaf(DTree):
    """A leaf holding a constant semiring or monoid value."""

    __slots__ = ("value",)
    tag = "c"

    def __init__(self, value):
        self.value = value

    def _compute_distribution(self, ctx):
        return Distribution.point(self.value)

    def _label(self):
        return f"const {self.value!r}"


class VarLeaf(DTree):
    """A leaf holding a random variable ``x ∈ X``."""

    __slots__ = ("name",)
    tag = "x"

    def __init__(self, name: str):
        self.name = name

    def _compute_distribution(self, ctx):
        return ctx.var_distribution(self.name)

    def _label(self):
        return f"var {self.name}"


class PlusNode(DTree):
    """``⊕`` over independent semiring expressions (Eq. 4)."""

    __slots__ = ("children",)
    tag = "⊕"

    def __init__(self, children):
        children = tuple(children)
        if len(children) < 2:
            raise CompilationError("⊕ node needs at least two children")
        self.children = children

    def _compute_distribution(self, ctx):
        return convolution.semiring_add_many(
            [child.distribution(ctx) for child in self.children], ctx.semiring
        )


class TimesNode(DTree):
    """``⊙`` over independent semiring expressions (Eq. 5)."""

    __slots__ = ("children",)
    tag = "⊙"

    def __init__(self, children):
        children = tuple(children)
        if len(children) < 2:
            raise CompilationError("⊙ node needs at least two children")
        self.children = children

    def _compute_distribution(self, ctx):
        return convolution.semiring_mul_many(
            [child.distribution(ctx) for child in self.children], ctx.semiring
        )


class MPlusNode(DTree):
    """``⊕`` over independent semimodule expressions (Eq. 6)."""

    __slots__ = ("children", "monoid")
    tag = "⊕M"

    def __init__(self, monoid: Monoid, children):
        children = tuple(children)
        if len(children) < 2:
            raise CompilationError("monoid ⊕ node needs at least two children")
        self.monoid = monoid
        self.children = children

    def _compute_distribution(self, ctx):
        return convolution.monoid_add_many(
            [child.distribution(ctx) for child in self.children], self.monoid
        )

    def _label(self):
        return f"⊕ [{self.monoid.name}]"


class TensorNode(DTree):
    """``⊗``: independent scalar action ``Φ ⊗ α`` (Eq. 7)."""

    __slots__ = ("children", "monoid")
    tag = "⊗"

    def __init__(self, monoid: Monoid, scalar: DTree, arg: DTree):
        self.monoid = monoid
        self.children = (scalar, arg)

    def _compute_distribution(self, ctx):
        scalar, arg = self.children
        return convolution.scalar_action(
            scalar.distribution(ctx),
            arg.distribution(ctx),
            self.monoid,
            ctx.semiring,
        )

    def _label(self):
        return f"⊗ [{self.monoid.name}]"


class CompareNode(DTree):
    """``[θ]``: comparison of independent expressions (Eqs. 8/9)."""

    __slots__ = ("children", "op")
    tag = "[θ]"

    def __init__(self, op: ComparisonOp, left: DTree, right: DTree):
        self.op = op
        self.children = (left, right)

    def _compute_distribution(self, ctx):
        left, right = self.children
        return convolution.comparison(
            left.distribution(ctx),
            right.distribution(ctx),
            self.op,
            ctx.semiring,
        )

    def _label(self):
        return f"[{self.op.symbol}]"


class MutexNode(DTree):
    """``⊔ₓ``: partitioning into mutually exclusive branches (Eq. 10).

    Each branch carries the eliminated value ``s``, its probability
    ``P_x[s]``, and the d-tree of the restriction ``Φ|x←s``.
    """

    __slots__ = ("children", "name", "branches")
    tag = "⊔"

    def __init__(self, name: str, branches):
        branches = tuple(branches)
        if not branches:
            raise CompilationError(f"⊔ node for {name!r} has no branches")
        self.name = name
        self.branches = branches
        self.children = tuple(child for _, _, child in branches)

    def _compute_distribution(self, ctx):
        return convolution.mutex_mixture(
            (prob, child.distribution(ctx)) for _, prob, child in self.branches
        )

    def _label(self):
        values = ", ".join(repr(v) for v, _, _ in self.branches)
        return f"⊔ {self.name} ∈ {{{values}}}"

    def pretty(self, indent: str = "") -> str:
        lines = [indent + self._label()]
        for value, prob, child in self.branches:
            lines.append(f"{indent}  {self.name}←{value!r} (p={prob:g}):")
            lines.append(child.pretty(indent + "    "))
        return "\n".join(lines)
