"""Edge-case tests for the compiler beyond the main behaviour suites."""

import math

import pytest

from repro.algebra.conditions import compare
from repro.algebra.expressions import ONE, ZERO, SConst, Var, sprod, ssum
from repro.algebra.monoid import MIN, SUM, CappedSumMonoid
from repro.algebra.semimodule import MConst, aggsum, tensor
from repro.algebra.semiring import BOOLEAN, NATURALS
from repro.core.compile import Compiler
from repro.core.dtree import ConstLeaf, MutexNode, VarLeaf
from repro.errors import DistributionError
from repro.prob.distribution import Distribution
from repro.prob.space import ProbabilitySpace
from repro.prob.variables import VariableRegistry


class TestDegenerateInputs:
    def test_single_variable(self):
        reg = VariableRegistry()
        reg.bernoulli("x", 0.4)
        compiler = Compiler(reg, BOOLEAN)
        tree = compiler.compile(Var("x"))
        assert isinstance(tree, VarLeaf)
        assert compiler.probability(Var("x")) == pytest.approx(0.4)

    def test_constants(self):
        compiler = Compiler(VariableRegistry(), BOOLEAN)
        assert compiler.probability(ONE) == 1.0
        assert compiler.probability(ZERO) == 0.0

    def test_deterministic_variable_single_branch(self):
        reg = VariableRegistry()
        reg.constant("x", True)
        reg.bernoulli("y", 0.5)
        compiler = Compiler(reg, BOOLEAN)
        # x is certain; (x+y)(x·y + y) is entangled, Shannon on it has
        # one branch only.
        expr = sprod([ssum([Var("x"), Var("y")]), ssum([sprod([Var("x"), Var("y")]), Var("y")])])
        dist = compiler.distribution(expr)
        brute = ProbabilitySpace(reg, BOOLEAN).distribution_of(expr)
        assert dist.almost_equals(brute)

    def test_undeclared_variable_fails_cleanly(self):
        compiler = Compiler(VariableRegistry(), BOOLEAN)
        with pytest.raises(DistributionError, match="no declared"):
            compiler.distribution(Var("ghost"))

    def test_module_zero(self):
        compiler = Compiler(VariableRegistry(), BOOLEAN)
        dist = compiler.distribution(MConst(MIN, math.inf))
        assert dist[math.inf] == 1.0


class TestSharedVariableComparisons:
    def test_compare_sides_sharing_variables(self):
        # [x·y ≤ x·z] needs Shannon on x before the sides separate.
        reg = VariableRegistry()
        for name, p in (("x", 0.5), ("y", 0.4), ("z", 0.7)):
            reg.bernoulli(name, p)
        left = aggsum(MIN, [tensor(Var("x") * Var("y"), MConst(MIN, 5))])
        right = aggsum(MIN, [tensor(Var("x") * Var("z"), MConst(MIN, 9))])
        cond = compare(left, "<=", right)
        compiler = Compiler(reg, BOOLEAN)
        dist = compiler.distribution(cond)
        brute = ProbabilitySpace(reg, BOOLEAN).distribution_of(cond)
        assert dist.almost_equals(brute)

    def test_semiring_comparison_against_zero(self):
        reg = VariableRegistry()
        reg.bernoulli("x", 0.3)
        reg.bernoulli("y", 0.6)
        guard = compare(Var("x") + Var("y"), "!=", ZERO)
        compiler = Compiler(reg, BOOLEAN)
        assert compiler.probability(guard) == pytest.approx(1 - 0.7 * 0.4)


class TestCappedMonoidCompilation:
    def test_capped_aggsum_support_is_bounded(self):
        reg = VariableRegistry()
        for i in range(8):
            reg.bernoulli(f"x{i}", 0.5)
        capped = CappedSumMonoid(3)
        expr = aggsum(
            capped,
            [tensor(Var(f"x{i}"), MConst(capped, 1)) for i in range(8)],
        )
        dist = Compiler(reg, BOOLEAN).distribution(expr)
        # Support bounded by cap + 1 values (Proposition 3's mechanism),
        # with the cap absorbing the whole binomial tail.
        assert dist.support() <= {0, 1, 2, 3}
        assert dist[3] == pytest.approx(_binomial_tail(8, 0.5, 3))


def _binomial_tail(n, p, k):
    """P[Binomial(n, p) ≥ k]."""
    from math import comb

    return sum(comb(n, i) * p**i * (1 - p) ** (n - i) for i in range(k, n + 1))


class TestMemoisation:
    def test_memo_reuses_subtrees_across_calls(self):
        reg = VariableRegistry()
        for name in "abc":
            reg.bernoulli(name, 0.5)
        compiler = Compiler(reg, BOOLEAN)
        first = compiler.compile(Var("a") * Var("b"))
        second = compiler.compile(ssum([sprod([Var("a"), Var("b")]), Var("c")]))
        assert any(node is first for node in second.iter_unique())

    def test_mutex_counter_accumulates(self):
        reg = VariableRegistry()
        for name in "abc":
            reg.bernoulli(name, 0.5)
        compiler = Compiler(reg, BOOLEAN)
        entangled = sprod([ssum([Var("a"), Var("b")]), ssum([Var("a"), Var("c")])])
        compiler.compile(entangled)
        count = compiler.mutex_nodes_created
        compiler.compile(entangled)  # memoised: no new expansions
        assert compiler.mutex_nodes_created == count


class TestBagSemanticsModules:
    def test_sum_with_multiplicities(self):
        reg = VariableRegistry()
        reg.integer("m", {0: 0.25, 1: 0.25, 3: 0.5})
        expr = aggsum(SUM, [tensor(Var("m"), MConst(SUM, 10))])
        dist = Compiler(reg, NATURALS).distribution(expr)
        assert dist[0] == pytest.approx(0.25)
        assert dist[10] == pytest.approx(0.25)
        assert dist[30] == pytest.approx(0.5)

    def test_min_with_multiplicities_uses_presence(self):
        reg = VariableRegistry()
        reg.integer("m", {0: 0.5, 5: 0.5})
        expr = aggsum(MIN, [tensor(Var("m"), MConst(MIN, 7))])
        dist = Compiler(reg, NATURALS).distribution(expr)
        assert dist[7] == pytest.approx(0.5)
        assert dist[math.inf] == pytest.approx(0.5)
