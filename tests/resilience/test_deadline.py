"""Unit tests of the deadline primitive and its ambient propagation."""

import time

import pytest

from repro.engine.montecarlo import MonteCarloEngine
from repro.engine.spec import EvalSpec
from repro.errors import QueryValidationError
from repro.resilience import (
    Deadline,
    DeadlineExceeded,
    check_deadline,
    current_deadline,
    deadline_from_spec,
    deadline_scope,
)


class TestDeadline:
    def test_validation(self):
        with pytest.raises(QueryValidationError):
            Deadline(0.0)
        with pytest.raises(QueryValidationError):
            Deadline(-1.0)
        with pytest.raises(QueryValidationError):
            Deadline("soon")
        with pytest.raises(QueryValidationError):
            Deadline(True)

    def test_after_none_is_none(self):
        assert Deadline.after(None) is None
        assert isinstance(Deadline.after(1.5), Deadline)

    def test_remaining_and_expiry(self):
        deadline = Deadline(60.0)
        assert not deadline.expired()
        assert 0.0 < deadline.remaining() <= 60.0
        assert deadline.elapsed() >= 0.0
        deadline.check("unit test")  # far from expiry: no raise

        tight = Deadline(0.001)
        time.sleep(0.005)
        assert tight.expired()
        assert tight.remaining() < 0.0
        with pytest.raises(DeadlineExceeded) as err:
            tight.check("unit test")
        assert "unit test" in str(err.value)
        assert err.value.deadline is tight

    def test_from_spec(self):
        assert deadline_from_spec(None) is None
        assert deadline_from_spec(EvalSpec()) is None
        deadline = deadline_from_spec(EvalSpec(time_limit=2.0))
        assert deadline is not None and deadline.seconds == 2.0


class TestAmbientScope:
    def test_scope_sets_and_resets(self):
        assert current_deadline() is None
        deadline = Deadline(30.0)
        with deadline_scope(deadline) as active:
            assert active is deadline
            assert current_deadline() is deadline
            inner = Deadline(10.0)
            with deadline_scope(inner):
                assert current_deadline() is inner
            assert current_deadline() is deadline
        assert current_deadline() is None

    def test_scope_none_is_noop(self):
        with deadline_scope(None) as active:
            assert active is None
            assert current_deadline() is None

    def test_check_deadline_without_scope_is_noop(self):
        check_deadline("nothing active")  # must not raise

    def test_check_deadline_raises_in_expired_scope(self):
        deadline = Deadline(0.001)
        time.sleep(0.005)
        with deadline_scope(deadline):
            with pytest.raises(DeadlineExceeded):
                check_deadline("loop body")

    def test_scope_resets_on_exception(self):
        with pytest.raises(RuntimeError):
            with deadline_scope(Deadline(30.0)):
                raise RuntimeError("boom")
        assert current_deadline() is None


class TestEvalSpecPolicy:
    def test_on_timeout_values(self):
        assert EvalSpec().on_timeout == "partial"
        assert EvalSpec(on_timeout="raise").on_timeout == "raise"
        with pytest.raises(QueryValidationError):
            EvalSpec(on_timeout="explode")

    def test_on_timeout_round_trips_json(self):
        spec = EvalSpec(time_limit=0.5, on_timeout="raise")
        assert EvalSpec.from_json(spec.to_json()) == spec

    def test_on_timeout_is_execution_only(self):
        # Policy, like workers, does not describe answer quality: a spec
        # that only sets it must not force an engine off the exact path.
        assert EvalSpec(on_timeout="raise").execution_only


class TestMonteCarloDeadlineClamp:
    """The mid-round overshoot fix: the final batch is clamped to what
    the observed sampling rate affords within the remaining budget."""

    clamp = staticmethod(MonteCarloEngine._deadline_clamp)

    def test_expired_budget_degenerates_to_one(self):
        assert self.clamp(4096, 1000, 0.5, 0.0) == 1
        assert self.clamp(4096, 1000, 0.5, -1.0) == 1

    def test_no_rate_information_keeps_batch(self):
        assert self.clamp(4096, 0, 0.0, 1.0) == 4096
        assert self.clamp(4096, 1000, 0.0, 1.0) == 4096

    def test_clamps_to_affordable_samples(self):
        # 1000 samples in 1s → 1000/s; 0.1s left affords ~100 samples.
        assert self.clamp(4096, 1000, 1.0, 0.1) == 100
        # Plenty of time left: the planned batch stands.
        assert self.clamp(4096, 1000, 1.0, 100.0) == 4096

    def test_never_below_one(self):
        assert self.clamp(4096, 1000, 1.0, 1e-9) >= 1
