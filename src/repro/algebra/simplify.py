"""Semiring-aware normalisation of expressions.

The smart constructors in :mod:`repro.algebra.expressions` and
:mod:`repro.algebra.semimodule` apply only simplifications valid in *every*
semiring.  During compilation, however, the target semiring is known, which
enables much stronger rewrites — most importantly after a Shannon expansion
step ``Φ|x←s`` substitutes constants into the expression:

* variable-free subexpressions fold to constants
  (``SConst``/``MConst``) by direct evaluation;
* in the **Boolean** semiring, sums absorb on ``⊤`` (``⊤ + Φ = ⊤``) and
  both sums and products are idempotent (``Φ + Φ = Φ``, ``Φ · Φ = Φ``),
  so duplicate children collapse;
* in the **naturals** semiring, constant summands/factors fold
  arithmetically.

These rewrites are what keep the residual expressions of a mutex
decomposition small; without Boolean absorption the Shannon rule would
barely shrink the expression it expands.
"""

from __future__ import annotations

from repro.algebra.bounds import fold_comparison_by_bounds
from repro.algebra.conditions import Compare, compare
from repro.algebra.expressions import (
    ONE,
    Expr,
    Prod,
    SConst,
    SemiringExpr,
    Sum,
    Var,
    _key_of,
    ssum,
    sprod,
)
from repro.algebra.monoid import CappedSumMonoid, MaxMonoid, MinMonoid
from repro.algebra.semimodule import AggSum, MConst, ModuleExpr, Tensor, aggsum, tensor
from repro.algebra.semiring import Semiring
from repro.errors import AlgebraError

__all__ = ["Normalizer", "normalize"]


class Normalizer:
    """Normalise expressions relative to a fixed target semiring.

    Instances memoise results, which matters during compilation where the
    same subexpressions reappear across Shannon branches.

    :meth:`restrict` is the fused fast path for Shannon expansion: it
    computes the normalised restriction ``Φ|x←s`` in one pass (with its
    own memo), instead of materialising the substituted-but-unnormalised
    expression first.  Subtrees not mentioning ``x`` are returned
    untouched, which preserves object identity and therefore turns the
    subsequent normaliser/compiler memo lookups into cache hits.
    """

    def __init__(self, semiring: Semiring):
        self.semiring = semiring
        self._cache: dict[Expr, Expr] = {}
        self._restrict_cache: dict[tuple, Expr] = {}

    def __call__(self, expr: Expr) -> Expr:
        cached = self._cache.get(expr)
        if cached is None:
            cached = self._normalize(expr)
            self._cache[expr] = cached
        return cached

    def _normalize(self, expr: Expr) -> Expr:
        if isinstance(expr, (Var, SConst, MConst)):
            return self._fold_const(expr)
        if isinstance(expr, Sum):
            return self._combine_sum([self(c) for c in expr.children])
        if isinstance(expr, Prod):
            return self._combine_prod([self(c) for c in expr.children])
        if isinstance(expr, Compare):
            return self._combine_compare(self(expr.left), expr.op, self(expr.right))
        if isinstance(expr, Tensor):
            return self._combine_tensor(self(expr.phi), self(expr.arg))
        if isinstance(expr, AggSum):
            return self._combine_aggsum(expr.monoid, [self(c) for c in expr.children])
        raise AlgebraError(f"cannot normalise expression of type {type(expr).__name__}")

    # -- Shannon restriction ----------------------------------------------

    def restrict(self, expr: Expr, name: str, constant: SConst) -> Expr:
        """The normalised restriction ``expr|name←constant`` (Eq. 10).

        Precondition: ``expr`` is already in normal form (everything the
        compiler Shannon-expands is).  Subtrees not mentioning ``name``
        are therefore returned as-is, without re-normalisation.

        Results are memoised per ``(name, value)`` branch, keyed directly
        on the (shared) subexpressions, so sibling Shannon branches pay a
        dictionary hit per reused summand instead of a re-restriction.
        """
        if name not in expr.variables:
            return self(expr)
        branch = self._restrict_cache.get((name, constant.value))
        if branch is None:
            branch = self._restrict_cache[(name, constant.value)] = {}
        cached = branch.get(expr)
        if cached is None:
            cached = self._restrict(expr, name, constant, branch)
            branch[expr] = cached
        return cached

    def _restrict(self, expr: Expr, name: str, constant: SConst, branch: dict) -> Expr:
        # ``name ∈ expr.variables`` is guaranteed by the callers; untouched
        # children are normalised already and pass through unchanged.
        kind = type(expr)
        if kind is Var:
            return self._fold_const(constant)
        if kind is Sum or kind is Prod or kind is AggSum:
            out = []
            for child in expr.children:
                if name not in child._vars:
                    out.append(child)
                    continue
                restricted = branch.get(child)
                if restricted is None:
                    restricted = self._restrict(child, name, constant, branch)
                    branch[child] = restricted
                out.append(restricted)
            if kind is Sum:
                return self._combine_sum(out)
            if kind is Prod:
                return self._combine_prod(out)
            return self._combine_aggsum(expr.monoid, out)
        if kind is Tensor or kind is Compare:
            pair = []
            for child in expr.children:
                if name not in child._vars:
                    pair.append(child)
                    continue
                restricted = branch.get(child)
                if restricted is None:
                    restricted = self._restrict(child, name, constant, branch)
                    branch[child] = restricted
                pair.append(restricted)
            if kind is Tensor:
                return self._combine_tensor(pair[0], pair[1])
            return self._combine_compare(pair[0], expr.op, pair[1])
        raise AlgebraError(
            f"cannot restrict expression of type {type(expr).__name__}"
        )

    # -- per-node-type combination rules ----------------------------------

    def _fold_const(self, expr: Expr) -> Expr:
        """Canonicalise constants for the target semiring."""
        if isinstance(expr, SConst) and self.semiring.is_boolean:
            return SConst(int(self.semiring.coerce(expr.value)))
        return expr

    def _combine_sum(self, children: list) -> SemiringExpr:
        semiring = self.semiring
        const_acc = semiring.zero
        symbolic: list[SemiringExpr] = []
        seen: set = set()
        for child in children:
            if isinstance(child, SConst):
                const_acc = semiring.add(const_acc, semiring.coerce(child.value))
            elif semiring.is_boolean:
                if child not in seen:  # idempotence: Φ + Φ = Φ
                    seen.add(child)
                    symbolic.append(child)
            else:
                symbolic.append(child)
        if semiring.is_boolean and const_acc:
            return ONE  # absorption: ⊤ + Φ = ⊤
        if const_acc != semiring.zero:
            symbolic.append(SConst(int(const_acc)))
        return ssum(symbolic)

    def _combine_prod(self, children: list) -> SemiringExpr:
        semiring = self.semiring
        const_acc = semiring.one
        symbolic: list[SemiringExpr] = []
        seen: set = set()
        for child in children:
            if isinstance(child, SConst):
                const_acc = semiring.mul(const_acc, semiring.coerce(child.value))
                if const_acc == semiring.zero:
                    return SConst(0)
            elif semiring.is_boolean:
                if child not in seen:  # idempotence: Φ · Φ = Φ
                    seen.add(child)
                    symbolic.append(child)
            else:
                symbolic.append(child)
        if const_acc != semiring.one:
            symbolic.append(SConst(int(const_acc)))
        return sprod(symbolic)

    def _combine_compare(self, left: Expr, op, right: Expr) -> SemiringExpr:
        folded = compare(left, op, right)
        if isinstance(folded, SConst):
            return self._fold_const(folded)
        if isinstance(folded, Compare) and isinstance(folded.left, ModuleExpr):
            # Early folding by value bounds: after Shannon substitutions
            # the attainable intervals of the two sides may separate, at
            # which point the comparison is decided in every remaining
            # world (the Experiment-E effect).
            decided = fold_comparison_by_bounds(
                folded.left,
                folded.op.symbol,
                folded.right,
                self.semiring.is_boolean,
            )
            if decided is not None:
                return SConst(int(decided))
        return folded

    def _combine_tensor(self, phi: SemiringExpr, arg: ModuleExpr) -> ModuleExpr:
        if isinstance(phi, SConst) and isinstance(arg, MConst):
            scalar = self.semiring.coerce(phi.value)
            return MConst(arg.monoid, arg.monoid.act(scalar, arg.value, self.semiring))
        if isinstance(phi, SConst):
            scalar = self.semiring.coerce(phi.value)
            if scalar == self.semiring.one:
                return arg
            if scalar == self.semiring.zero:
                return MConst(arg.monoid, arg.monoid.zero)
        return tensor(phi, arg)

    def _combine_aggsum(self, monoid, children: list) -> ModuleExpr:
        # Trusted-input variant of :func:`repro.algebra.semimodule.aggsum`:
        # the children are already-normalised semimodule expressions of
        # this monoid (restriction and normalisation preserve both), so
        # the per-term validation is skipped on this very hot path.
        flat: list[ModuleExpr] = []
        const_acc = monoid.zero
        for term in children:
            kind = type(term)
            if kind is MConst:
                const_acc = monoid.add(const_acc, term.value)
            elif kind is AggSum:
                for sub in term.children:
                    if type(sub) is MConst:
                        const_acc = monoid.add(const_acc, sub.value)
                    else:
                        flat.append(sub)
            else:
                flat.append(term)
        if const_acc != monoid.zero:
            flat.append(MConst(monoid, const_acc))
        if not flat:
            return MConst(monoid, monoid.zero)
        if len(flat) == 1:
            return flat[0]
        expr = AggSum(monoid, tuple(sorted(flat, key=_key_of)))
        folded = _dominance_fold(expr)
        if folded is not None:
            return folded
        return expr


def _canonical_term_value(term: ModuleExpr):
    """The monoid value of a canonical summand ``Φ ⊗ m``, else ``None``."""
    if isinstance(term, Tensor):
        arg = term.arg
        if isinstance(arg, MConst):
            return arg.value
    return None


def _dominance_fold(expr: AggSum) -> ModuleExpr | None:
    """Drop summands dominated by the sum's *certain* part.

    As Shannon expansion assigns variables, terms ``Φᵢ ⊗ mᵢ`` whose scalar
    folds to ``1_K`` merge into a single certain :class:`MConst`.  That
    certain value dominates optional terms under the selective monoids —
    the key fact being that an optional term contributes either its value
    or the monoid's neutral element:

    * **MIN** with certain value ``m``: a term with ``mᵢ ≥ m`` contributes
      ``min(m, mᵢ) = m`` or ``min(m, +∞) = m`` — droppable either way;
    * **MAX** dually for ``mᵢ ≤ m``;
    * **capped SUM** (:class:`~repro.algebra.monoid.CappedSumMonoid`) with
      its certain part saturated at the cap: adding any non-negative
      term leaves the sum at the cap, so the whole expression folds to
      ``MConst(cap)``.

    This is the distribution-level counterpart of the Section-5 pruning
    rules: it is what makes Shannon subtrees collapse once enough clauses
    are satisfied (the paper's Experiment-E effect).  Returns ``None``
    when no summand can be dropped.
    """
    monoid = expr.monoid
    if isinstance(monoid, MinMonoid):
        keep = lambda value, certain: value < certain  # noqa: E731
    elif isinstance(monoid, MaxMonoid):
        keep = lambda value, certain: value > certain  # noqa: E731
    elif isinstance(monoid, CappedSumMonoid):
        certain = None
        for child in expr.children:
            if isinstance(child, MConst):
                certain = child.value
                break
        if certain is None or certain < monoid.cap:
            return None
        for child in expr.children:
            if isinstance(child, MConst):
                continue
            value = _canonical_term_value(child)
            if value is None or value < 0:
                return None  # negative/opaque contribution: keep everything
        return MConst(monoid, monoid.cap)
    else:
        return None

    certain = None
    for child in expr.children:
        if isinstance(child, MConst):
            certain = child.value
            break
    if certain is None:
        return None
    kept: list[ModuleExpr] = []
    dropped = False
    for child in expr.children:
        if isinstance(child, MConst):
            continue
        value = _canonical_term_value(child)
        if value is not None and not keep(value, certain):
            dropped = True
        else:
            kept.append(child)
    if not dropped:
        return None
    kept.append(MConst(monoid, certain))
    return aggsum(monoid, kept)


def normalize(expr: Expr, semiring: Semiring) -> Expr:
    """One-shot normalisation; see :class:`Normalizer`."""
    return Normalizer(semiring)(expr)
