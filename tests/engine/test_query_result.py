"""QueryResult conveniences and per-row memoization."""

import pytest

from repro import BOOLEAN, Compiler, Schema, Var, VariableRegistry, connect
from repro.engine.sprout import QueryResult, ResultRow


class CountingSource:
    """Distribution source that counts compile requests."""

    def __init__(self, registry):
        self.compiler = Compiler(registry, BOOLEAN)
        self.calls = 0

    @property
    def semiring(self):
        return self.compiler.semiring

    def distribution(self, expr):
        self.calls += 1
        return self.compiler.distribution(expr)


@pytest.fixture
def source():
    registry = VariableRegistry()
    registry.bernoulli("x", 0.25)
    registry.bernoulli("y", 0.5)
    return CountingSource(registry)


class TestMemoization:
    def test_probability_compiles_once(self, source):
        row = ResultRow(Schema(["a"]), (1,), Var("x"), source)
        assert row.probability() == pytest.approx(0.25)
        assert row.probability() == pytest.approx(0.25)
        assert source.calls == 1

    def test_annotation_distribution_shares_the_memo(self, source):
        row = ResultRow(Schema(["a"]), (1,), Var("x"), source)
        row.probability()
        dist = row.annotation_distribution()
        assert dist[True] == pytest.approx(0.25)
        assert source.calls == 1

    def test_pretty_does_not_recompile(self, source):
        schema = Schema(["a"])
        rows = [
            ResultRow(schema, (1,), Var("x"), source),
            ResultRow(schema, (2,), Var("y"), source),
        ]
        result = QueryResult(schema, rows, {})
        result.pretty()
        result.pretty()
        result.to_dicts()
        assert source.calls == 2  # once per distinct row


class TestConveniences:
    @pytest.fixture
    def result(self):
        s = connect()
        t = s.table("R", ["name", "score"])
        for name, score, p in [("a", 3, 0.2), ("b", 1, 0.9), ("c", 2, 0.5)]:
            t.insert((name, score), p=p)
        return s.table("R").select("name", "score").run(engine="sprout")

    def test_to_dicts(self, result):
        dicts = result.to_dicts()
        assert {"name": "b", "score": 1, "probability": pytest.approx(0.9)} in dicts
        assert all(set(d) == {"name", "score", "probability"} for d in dicts)
        bare = result.to_dicts(include_probability=False)
        assert all(set(d) == {"name", "score"} for d in bare)

    def test_top_k_by_probability(self, result):
        top = result.top_k(2)
        assert [row.values[0] for row in top] == ["b", "c"]
        assert isinstance(top, QueryResult)
        assert top.engine == result.engine

    def test_top_k_by_attribute(self, result):
        top = result.top_k(1, by="score")
        assert top.rows[0].values == ("a", 3)

    def test_repr_shows_engine_and_rows(self, result):
        assert repr(result) == "QueryResult(engine='sprout', rows=3)"


class TestTopKSeparation:
    """Interval-aware top-k: separation decides the ranking early."""

    def interval_result(self, intervals):
        from repro.engine.spec import ProbInterval

        schema = Schema(["name"])
        rows = [
            ResultRow(schema, (chr(ord("a") + i),), Var("x"), None,
                      _probability=ProbInterval(low, high))
            for i, (low, high) in enumerate(intervals)
        ]
        return QueryResult(schema, rows, {}, engine="approx")

    def test_separated_intervals_decide_membership(self):
        result = self.interval_result([(0.7, 0.9), (0.1, 0.3), (0.4, 0.6)])
        top = result.top_k(1)
        assert top.rows[0].values == ("a",)
        assert top.stats["top_k_decided"] is True

    def test_overlapping_intervals_stay_undecided(self):
        result = self.interval_result([(0.4, 0.9), (0.1, 0.6), (0.0, 0.2)])
        top = result.top_k(1)
        assert top.stats["top_k_decided"] is False
        assert len(top) == 1  # a best-effort selection is still returned

    def test_exact_rows_are_always_decided(self):
        result = self.interval_result([(0.9, 0.9), (0.5, 0.5), (0.1, 0.1)])
        assert result.top_k(2).stats["top_k_decided"] is True

    def test_k_covering_all_rows_is_decided(self):
        result = self.interval_result([(0.0, 1.0), (0.0, 1.0)])
        assert result.top_k(5).stats["top_k_decided"] is True

    def test_attribute_ranking_drops_the_probability_verdict(self):
        result = self.interval_result([(0.7, 0.9), (0.1, 0.3)])
        schema_sorted = result.top_k(1).top_k(1, by="name")
        assert "top_k_decided" not in schema_sorted.stats
