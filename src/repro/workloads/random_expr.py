"""Random expression generator for the synthetic experiments (Eq. 11).

Section 7.1 of the paper evaluates the compiler on randomly generated
conditional expressions of the two forms ::

    [ Σ_AGGL Φᵢ ⊗ vᵢ  θ  Σ_AGGR Ψⱼ ⊗ wⱼ ]      (two-sided, R > 0)
    [ Σ_AGGL Φᵢ ⊗ vᵢ  θ  c ]                    (one-sided, R = 0)

with parameters

* ``L`` / ``R`` — number of semimodule terms on the left/right of θ;
* ``AGGL`` / ``AGGR`` — the aggregation monoids of the two sides;
* ``#v`` (``variables``) — number of distinct Boolean random variables;
* ``#cl`` (``clauses``) — clauses per term Φᵢ;
* ``#l`` (``literals``) — positive literals per clause;
* ``maxv`` (``max_value``) — values vᵢ, wⱼ are drawn from ``[0, maxv]``;
* ``c`` (``constant``) — right-hand constant of the one-sided form;
* ``θ`` (``theta``) — the comparison operator.

Each term ``Φᵢ`` is a product of ``#cl`` clauses, each clause a disjunction
(semiring sum) of ``#l`` distinct variables — with ``#cl`` clauses per term
this mimics the provenance of a ``#cl``-way join with projection
alternatives, which is why the paper notes that Experiment A with
``#cl = 3`` "evaluates COUNT DISTINCT on top of a conjunctive query".
"""

from __future__ import annotations

import random
from dataclasses import dataclass, replace
from typing import Iterator

from repro.algebra.conditions import compare
from repro.algebra.expressions import Expr, SemiringExpr, Var, sprod, ssum
from repro.algebra.monoid import Monoid, monoid_by_name
from repro.algebra.semimodule import MConst, ModuleExpr, aggsum, tensor
from repro.errors import ReproError
from repro.prob.variables import VariableRegistry

__all__ = ["ExprParams", "generate_condition", "generate_workload"]


@dataclass(frozen=True)
class ExprParams:
    """Parameter vector of the Eq.-11 generator (names follow the paper)."""

    left_terms: int = 200  # L
    right_terms: int = 0  # R; 0 selects the one-sided form
    variables: int = 25  # #v
    clauses: int = 3  # #cl
    literals: int = 3  # #l
    max_value: int = 200  # maxv
    constant: int = 100  # c
    theta: str = "="  # θ
    agg_left: str = "MIN"  # AGGL
    agg_right: str = "MIN"  # AGGR
    variable_probability: float | None = 0.5  # None: uniform in (0, 1)

    def monoid_left(self) -> Monoid:
        return monoid_by_name(self.agg_left)

    def monoid_right(self) -> Monoid:
        return monoid_by_name(self.agg_right)

    def with_(self, **updates) -> "ExprParams":
        """A copy with some parameters replaced (sweep convenience)."""
        return replace(self, **updates)


def _clause(rng: random.Random, names: list[str], literals: int) -> SemiringExpr:
    chosen = rng.sample(names, min(literals, len(names)))
    return ssum(Var(name) for name in chosen)


def _term(
    rng: random.Random,
    names: list[str],
    params: ExprParams,
    monoid: Monoid,
) -> ModuleExpr:
    phi = sprod(
        _clause(rng, names, params.literals) for _ in range(params.clauses)
    )
    value = rng.randint(0, params.max_value)
    return tensor(phi, MConst(monoid, value))


def _side(
    rng: random.Random,
    names: list[str],
    params: ExprParams,
    monoid: Monoid,
    terms: int,
) -> ModuleExpr:
    return aggsum(
        monoid, [_term(rng, names, params, monoid) for _ in range(terms)]
    )


def generate_condition(
    params: ExprParams, seed: int | None = None
) -> tuple[Expr, VariableRegistry]:
    """Generate one Eq.-11 conditional expression and its variable registry.

    Returns ``(expression, registry)``; the expression is a conditional
    ``[... θ ...]`` over Boolean variables named ``v0 .. v{#v-1}``.
    """
    if params.left_terms <= 0:
        raise ReproError("the left side needs at least one term (L ≥ 1)")
    if params.variables < params.literals:
        raise ReproError(
            f"need at least #l = {params.literals} variables, got "
            f"{params.variables}"
        )
    rng = random.Random(seed)
    registry = VariableRegistry()
    names = [f"v{i}" for i in range(params.variables)]
    for name in names:
        p = params.variable_probability
        registry.bernoulli(name, rng.uniform(0.01, 0.99) if p is None else p)

    left = _side(rng, names, params, params.monoid_left(), params.left_terms)
    if params.right_terms > 0:
        right: object = _side(
            rng, names, params, params.monoid_right(), params.right_terms
        )
    else:
        right = MConst(params.monoid_left(), params.constant)
    return compare(left, params.theta, right), registry


def generate_workload(
    params: ExprParams, runs: int, seed: int = 0
) -> Iterator[tuple[Expr, VariableRegistry]]:
    """Generate ``runs`` independent expressions (the paper's ``#runs``)."""
    for i in range(runs):
        yield generate_condition(params, seed=seed * 10_007 + i)
