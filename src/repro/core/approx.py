"""Approximate probability computation on partially compiled d-trees.

The paper notes (Section 1) that "besides exact computation, decomposition
trees also allow for approximate probability computation [18]": compiling
an expression only partially and propagating *bounds* for the unexpanded
residual expressions.  This module reproduces that scheme for Boolean-
semiring expressions:

* the expression is compiled with a budget on the number of Shannon (⊔)
  expansions;
* when the budget runs out, the remaining expression becomes an *unknown*
  leaf whose probability of being true lies in ``[0, 1]`` (sharpened by
  the trivial model/refutation bounds below);
* bounds propagate upward through the independence rules because
  ``P(Φ ∨ Ψ) = 1-(1-p)(1-q)`` and ``P(Φ ∧ Ψ) = p·q`` are monotone in both
  arguments, and through mutex nodes because mixtures are monotone too.

Increasing the budget refines the interval monotonically; with an
unbounded budget the interval collapses to the exact probability.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.algebra.conditions import Compare
from repro.algebra.expressions import (
    Expr,
    Prod,
    SConst,
    Sum,
    Var,
    count_occurrences,
    ssum,
    sprod,
)
from repro.algebra.simplify import Normalizer
from repro.algebra.semiring import BOOLEAN
from repro.core import decompose
from repro.core.compile import Compiler
from repro.errors import CompilationError
from repro.prob.variables import VariableRegistry

__all__ = ["ProbabilityBounds", "ApproximateCompiler", "approximate_probability"]


@dataclass(frozen=True)
class ProbabilityBounds:
    """An interval ``[low, high]`` bracketing a Boolean probability."""

    low: float
    high: float

    def __post_init__(self):
        if not (0.0 - 1e-9 <= self.low <= self.high + 1e-9 <= 1.0 + 1e-9):
            raise CompilationError(
                f"invalid probability bounds [{self.low}, {self.high}]"
            )

    @property
    def width(self) -> float:
        return self.high - self.low

    @property
    def midpoint(self) -> float:
        return (self.low + self.high) / 2.0

    def contains(self, p: float, tol: float = 1e-9) -> bool:
        return self.low - tol <= p <= self.high + tol

    @classmethod
    def exact(cls, p: float) -> "ProbabilityBounds":
        return cls(p, p)

    @classmethod
    def unknown(cls) -> "ProbabilityBounds":
        return cls(0.0, 1.0)

    def disjunction(self, other: "ProbabilityBounds") -> "ProbabilityBounds":
        """Bounds of ``P(Φ ∨ Ψ)`` for independent operands (monotone)."""
        return ProbabilityBounds(
            1.0 - (1.0 - self.low) * (1.0 - other.low),
            1.0 - (1.0 - self.high) * (1.0 - other.high),
        )

    def conjunction(self, other: "ProbabilityBounds") -> "ProbabilityBounds":
        """Bounds of ``P(Φ ∧ Ψ)`` for independent operands (monotone)."""
        return ProbabilityBounds(self.low * other.low, self.high * other.high)

    def __repr__(self):
        return f"[{self.low:.6g}, {self.high:.6g}]"


class ApproximateCompiler:
    """Budgeted compilation producing probability bounds.

    Only Boolean-semiring expressions built from variables, sums and
    products are supported (the positive-relational-algebra annotations of
    [18]); conditional or semimodule sub-expressions are treated as
    unknown leaves when reached.
    """

    def __init__(self, registry: VariableRegistry, budget: int):
        self.registry = registry
        self.budget = budget
        self._normalizer = Normalizer(BOOLEAN)
        self._memo: dict[Expr, ProbabilityBounds] = {}

    def bounds(self, expr: Expr) -> ProbabilityBounds:
        """Bounds on ``P[expr = ⊤]`` within the expansion budget."""
        return self._bounds(self._normalizer(expr))

    def _bounds(self, expr: Expr) -> ProbabilityBounds:
        cached = self._memo.get(expr)
        if cached is None:
            cached = self._bounds_uncached(expr)
            self._memo[expr] = cached
        return cached

    def _bounds_uncached(self, expr: Expr) -> ProbabilityBounds:
        if isinstance(expr, SConst):
            return ProbabilityBounds.exact(float(BOOLEAN.coerce(expr.value)))
        if isinstance(expr, Var):
            return ProbabilityBounds.exact(self.registry[expr.name][True])
        if isinstance(expr, Sum):
            return self._combine(expr.children, ssum, "disjunction")
        if isinstance(expr, Prod):
            return self._combine(expr.children, sprod, "conjunction")
        if isinstance(expr, Compare):
            return ProbabilityBounds.unknown()
        raise CompilationError(
            f"approximation supports Boolean semiring expressions only, "
            f"got {type(expr).__name__}"
        )

    def _combine(self, children, rebuild, combiner: str) -> ProbabilityBounds:
        groups = decompose.independent_groups(children)
        if len(groups) == 1:
            # Connected: no independence rule applies, expand a variable.
            return self._shannon(rebuild(children))
        result: ProbabilityBounds | None = None
        for group in groups:
            if len(group) == 1:
                group_bounds = self._bounds(group[0])
            else:
                group_bounds = self._shannon(rebuild(group))
            result = (
                group_bounds
                if result is None
                else getattr(result, combiner)(group_bounds)
            )
        return result

    def _shannon(self, expr: Expr) -> ProbabilityBounds:
        if not expr.variables:
            return self._bounds(expr)
        if self.budget <= 0:
            return ProbabilityBounds.unknown()
        self.budget -= 1
        counts = count_occurrences(expr)
        name = max(expr.variables, key=lambda n: (counts.get(n, 0), n))
        low = high = 0.0
        for value, prob in self.registry[name].items():
            restricted = self._normalizer(
                expr.substitute({name: SConst(int(value))})
            )
            child = self._bounds(restricted)
            low += prob * child.low
            high += prob * child.high
        return ProbabilityBounds(low, high)


def approximate_probability(
    expr: Expr,
    registry: VariableRegistry,
    epsilon: float = 0.01,
    initial_budget: int = 8,
    max_budget: int = 1 << 20,
) -> ProbabilityBounds:
    """Refine bounds on ``P[expr = ⊤]`` until the interval width ≤ ε.

    Doubles the Shannon budget until the requested precision is reached;
    falls back to the exact compiler once the budget would exceed
    ``max_budget`` (at which point exact compilation is typically cheaper
    than further refinement).
    """
    budget = initial_budget
    while budget <= max_budget:
        bounds = ApproximateCompiler(registry, budget).bounds(expr)
        if bounds.width <= epsilon:
            return bounds
        budget *= 2
    exact = Compiler(registry, BOOLEAN).probability(expr)
    return ProbabilityBounds.exact(exact)
