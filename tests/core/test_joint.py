"""Tests for joint distribution compilation (Section 5)."""

import pytest

from repro.algebra.conditions import compare
from repro.algebra.expressions import ZERO, Var
from repro.algebra.monoid import MAX, SUM
from repro.algebra.semimodule import MConst, aggsum, tensor
from repro.algebra.semiring import BOOLEAN, NATURALS
from repro.core.compile import Compiler
from repro.core.joint import JointCompiler, joint_distribution
from repro.errors import CompilationError
from repro.prob.space import ProbabilitySpace
from repro.prob.variables import VariableRegistry


class TestPaperExample:
    """The ⟨a+b, a·c⟩ example at the end of Section 5."""

    def test_joint_value_probability(self):
        reg = VariableRegistry()
        for name in "abc":
            reg.integer(name, {1: 0.5, 2: 0.5})
        compiler = Compiler(reg, NATURALS)
        joint = joint_distribution([Var("a") + Var("b"), Var("a") * Var("c")], compiler)
        # P⟨3, 2⟩ = Pa[2]Pb[1]Pc[1] + Pa[1]Pb[2]Pc[2]
        assert joint[(3, 2)] == pytest.approx(0.125 + 0.125)

    def test_matches_enumeration(self):
        reg = VariableRegistry()
        for name in "abc":
            reg.integer(name, {1: 0.3, 2: 0.7})
        compiler = Compiler(reg, NATURALS)
        exprs = [Var("a") + Var("b"), Var("a") * Var("c")]
        joint = joint_distribution(exprs, compiler)
        expected = ProbabilitySpace(reg, NATURALS).joint_distribution_of(exprs)
        assert joint.almost_equals(expected)


class TestIndependentComponents:
    def test_product_distribution(self):
        reg = VariableRegistry()
        reg.bernoulli("x", 0.3)
        reg.bernoulli("y", 0.8)
        compiler = Compiler(reg, BOOLEAN)
        joint = joint_distribution([Var("x"), Var("y")], compiler)
        assert joint[(True, True)] == pytest.approx(0.24)
        assert joint[(False, True)] == pytest.approx(0.56)

    def test_no_mutex_needed_for_independent(self):
        reg = VariableRegistry()
        reg.bernoulli("x", 0.3)
        reg.bernoulli("y", 0.8)
        jc = JointCompiler(Compiler(reg, BOOLEAN))
        jc.joint_distribution([Var("x"), Var("y")])
        assert jc.mutex_nodes_created == 0

    def test_single_expression(self):
        reg = VariableRegistry()
        reg.bernoulli("x", 0.3)
        compiler = Compiler(reg, BOOLEAN)
        joint = joint_distribution([Var("x")], compiler)
        assert joint[(True,)] == pytest.approx(0.3)


class TestAnnotationValueJoint:
    """The use case: joint of a tuple's annotation and aggregate value."""

    def test_presence_conditioned_aggregate(self):
        reg = VariableRegistry()
        reg.bernoulli("x", 0.5)
        reg.bernoulli("y", 0.5)
        compiler = Compiler(reg, BOOLEAN)
        alpha = aggsum(
            MAX,
            [tensor(Var("x"), MConst(MAX, 10)), tensor(Var("y"), MConst(MAX, 20))],
        )
        guard = compare(Var("x") + Var("y"), "!=", ZERO)
        joint = joint_distribution([guard, alpha], compiler)
        expected = ProbabilitySpace(reg, BOOLEAN).joint_distribution_of(
            [guard, alpha]
        )
        assert joint.almost_equals(expected)
        # Conditional P(max=10 | present) = P(x ∧ ¬y)/P(x ∨ y)
        present_mass = sum(
            p for (g, _), p in joint.items() if g
        )
        assert present_mass == pytest.approx(0.75)

    def test_memoisation_shares_restrictions(self):
        reg = VariableRegistry()
        for name in "ab":
            reg.bernoulli(name, 0.5)
        jc = JointCompiler(Compiler(reg, BOOLEAN))
        exprs = [Var("a") * Var("b"), Var("a") + Var("b")]
        first = jc.joint_distribution(exprs)
        second = jc.joint_distribution(exprs)
        assert first is second  # cached

    def test_budget_enforced(self):
        reg = VariableRegistry()
        for i in range(6):
            reg.bernoulli(f"v{i}", 0.5)
        compiler = Compiler(reg, BOOLEAN)
        jc = JointCompiler(compiler, max_mutex_nodes=0)
        entangled = [
            (Var("v0") + Var("v1")) * (Var("v0") + Var("v2")),
            Var("v0") * Var("v3"),
        ]
        with pytest.raises(CompilationError, match="budget"):
            jc.joint_distribution(entangled)

    def test_three_way_joint(self):
        reg = VariableRegistry()
        for name in "abc":
            reg.bernoulli(name, 0.4)
        compiler = Compiler(reg, BOOLEAN)
        exprs = [Var("a"), Var("a") + Var("b"), Var("b") * Var("c")]
        joint = joint_distribution(exprs, compiler)
        expected = ProbabilitySpace(reg, BOOLEAN).joint_distribution_of(exprs)
        assert joint.almost_equals(expected)

    def test_sum_aggregate_joint_with_count(self):
        reg = VariableRegistry()
        for name in ("x", "y"):
            reg.bernoulli(name, 0.5)
        compiler = Compiler(reg, BOOLEAN)
        total = aggsum(
            SUM,
            [tensor(Var("x"), MConst(SUM, 5)), tensor(Var("y"), MConst(SUM, 7))],
        )
        count = aggsum(
            SUM,
            [tensor(Var("x"), MConst(SUM, 1)), tensor(Var("y"), MConst(SUM, 1))],
        )
        joint = joint_distribution([total, count], compiler)
        assert joint[(12, 2)] == pytest.approx(0.25)
        assert joint[(5, 1)] == pytest.approx(0.25)
        assert joint[(0, 0)] == pytest.approx(0.25)
