"""Randomised end-to-end equivalence: SproutEngine vs possible worlds.

Generates small random pvc-databases and random ``Q`` queries, evaluates
each with the compiled engine and with the brute-force oracle, and asserts
identical answer probabilities.  This sweeps operator combinations that the
targeted unit tests do not enumerate.
"""

import random

import pytest

from repro.algebra import BOOLEAN, NATURALS, Var
from repro.db import PVCDatabase
from repro.engine import NaiveEngine, SproutEngine
from repro.prob import VariableRegistry
from repro.query import (
    AggSpec,
    GroupAgg,
    Product,
    Project,
    Select,
    Union,
    cmp_,
    conj,
    eq,
    lit,
    relation,
)

AGGS = ["SUM", "COUNT", "MIN", "MAX"]


def random_database(rng: random.Random, semiring=BOOLEAN) -> PVCDatabase:
    reg = VariableRegistry()
    db = PVCDatabase(registry=reg, semiring=semiring)
    counter = 0

    def fresh():
        nonlocal counter
        name = f"v{counter}"
        counter += 1
        if semiring is BOOLEAN:
            reg.bernoulli(name, rng.uniform(0.1, 0.9))
        else:
            reg.integer(name, {0: 0.3, 1: 0.4, 2: 0.3})
        return Var(name)

    r = db.create_table("R", ["a", "u"])
    for _ in range(rng.randint(2, 3)):
        r.add((rng.randint(1, 2), rng.randint(1, 9)), fresh())
    s = db.create_table("S", ["b", "w"])
    for _ in range(rng.randint(2, 3)):
        s.add((rng.randint(1, 2), rng.randint(1, 9)), fresh())
    t = db.create_table("T", ["a", "u"])
    for _ in range(rng.randint(1, 2)):
        t.add((rng.randint(1, 2), rng.randint(1, 9)), fresh())
    return db


def random_query(rng: random.Random):
    """A random well-formed Q query over R(a,u), S(b,w), T(a,u)."""
    shape = rng.randint(0, 5)
    if shape == 0:
        return Project(relation("R"), ["a"])
    if shape == 1:
        join = Select(Product(relation("R"), relation("S")), eq("a", "b"))
        return Project(join, ["a", "w"])
    if shape == 2:
        agg = rng.choice(AGGS)
        spec = (
            AggSpec.of("g", agg)
            if agg == "COUNT"
            else AggSpec.of("g", agg, "u")
        )
        return GroupAgg(relation("R"), ["a"], [spec])
    if shape == 3:
        agg = rng.choice(AGGS)
        spec = (
            AggSpec.of("g", agg)
            if agg == "COUNT"
            else AggSpec.of("g", agg, "u")
        )
        grouped = GroupAgg(Union(relation("R"), relation("T")), ["a"], [spec])
        return Project(
            Select(grouped, cmp_("g", rng.choice(["<=", ">=", "="]), rng.randint(0, 12))),
            ["a"],
        )
    if shape == 4:
        join = Select(Product(relation("R"), relation("S")), eq("a", "b"))
        agg = rng.choice(["MIN", "MAX"])
        return GroupAgg(join, ["b"], [AggSpec.of("g", agg, "w")])
    inner = GroupAgg(relation("S"), [], [AggSpec.of("m", "MIN", "w")])
    outer = Select(Product(relation("R"), inner), cmp_("u", ">=", "m"))
    return Project(outer, ["a"])


def assert_engines_agree(db, query):
    compiled = SproutEngine(db).run(query).tuple_probabilities()
    brute = NaiveEngine(db).tuple_probabilities(query)
    assert set(compiled) == set(brute), (compiled, brute)
    for key in brute:
        assert compiled[key] == pytest.approx(brute[key], abs=1e-9), key


class TestRandomisedEquivalence:
    @pytest.mark.parametrize("seed", range(25))
    def test_boolean_semantics(self, seed):
        rng = random.Random(seed)
        db = random_database(rng, BOOLEAN)
        query = random_query(rng)
        assert_engines_agree(db, query)

    @pytest.mark.parametrize("seed", range(15))
    def test_optimized_plans_agree(self, seed):
        from repro.query import optimize

        rng = random.Random(3000 + seed)
        db = random_database(rng, BOOLEAN)
        query = random_query(rng)
        catalog = {name: t.schema for name, t in db.tables.items()}
        optimized = optimize(query, catalog)
        exact = NaiveEngine(db).tuple_probabilities(query)
        fast = SproutEngine(db).run(optimized).tuple_probabilities()
        assert set(exact) == set(fast), (query, optimized)
        for key in exact:
            assert fast[key] == pytest.approx(exact[key]), key

    @pytest.mark.parametrize("seed", range(12))
    def test_bag_semantics(self, seed):
        rng = random.Random(1000 + seed)
        db = random_database(rng, NATURALS)
        query = random_query(rng)
        assert_engines_agree(db, query)

    @pytest.mark.parametrize("seed", range(6))
    def test_montecarlo_converges(self, seed):
        from repro.engine import MonteCarloEngine

        rng = random.Random(2000 + seed)
        db = random_database(rng, BOOLEAN)
        query = random_query(rng)
        exact = NaiveEngine(db).tuple_probabilities(query)
        estimate = MonteCarloEngine(db, seed=seed).tuple_probabilities(
            query, samples=3000
        )
        for key, p in exact.items():
            assert estimate.get(key, 0.0) == pytest.approx(p, abs=0.05)


class TestMultiAggregateQueries:
    def test_simultaneous_aggregates_agree(self):
        rng = random.Random(77)
        db = random_database(rng, BOOLEAN)
        query = GroupAgg(
            relation("R"),
            ["a"],
            [
                AggSpec.of("mn", "MIN", "u"),
                AggSpec.of("mx", "MAX", "u"),
                AggSpec.of("n", "COUNT"),
            ],
        )
        assert_engines_agree(db, query)

    def test_nested_aggregation_pipeline(self):
        # Aggregate of a query whose input is itself filtered on an
        # aggregate: $ → σ → π → $.
        rng = random.Random(78)
        db = random_database(rng, BOOLEAN)
        grouped = GroupAgg(relation("R"), ["a"], [AggSpec.of("g", "SUM", "u")])
        filtered = Project(Select(grouped, cmp_("g", ">=", 3)), ["a"])
        query = GroupAgg(filtered, [], [AggSpec.of("n", "COUNT")])
        assert_engines_agree(db, query)
