"""End-to-end ``time_limit`` contract, per engine.

For every engine the contract is the same: with ``time_limit=T`` the
run either finishes normally or degrades/raises within ``T`` plus a
small bounded overshoot — never hangs — and under
``on_timeout="partial"`` every returned interval still *contains* the
true probability (checked against the exact answer).

The demo workload is sub-millisecond, so the deadline is made to trip
*deterministically* by injecting latency at the engines' own fault
points rather than by shrinking ``time_limit`` below scheduler noise.
"""

import time

import pytest

from repro.algebra.semiring import BOOLEAN
from repro.core.compile import Compiler
from repro.engine.spec import ProbInterval
from repro.errors import QueryTimeoutError
from repro.resilience import (
    Deadline,
    DeadlineExceeded,
    FaultPlan,
    deadline_scope,
    fault_plan,
)
from repro.resilience.faults import clear_plan
from repro.server.bootstrap import demo_session
from repro.workloads.random_expr import ExprParams, generate_condition

QUERY = "SELECT kind, value FROM R"
JOIN_QUERY = "SELECT label FROM R, T WHERE kind = rkind"

#: Allowed scheduling overshoot past ``time_limit``: generous for slow
#: CI machines, small enough to catch an unbounded loop outright.
OVERSHOOT = 1.0


@pytest.fixture(autouse=True)
def no_leaked_plan():
    clear_plan()
    yield
    clear_plan()


def exact_probabilities(sql):
    result = demo_session().sql(sql, engine="sprout")
    return {row.values: row.probability() for row in result.rows}


def assert_sound(result, exact):
    """Every partial interval must bracket the exact probability."""
    for row in result.rows:
        interval = row.probability()
        assert isinstance(interval, ProbInterval)
        truth = exact[row.values]
        assert interval.low - 1e-12 <= truth <= interval.high + 1e-12


def timed(callable_, *args, **kwargs):
    start = time.perf_counter()
    outcome = callable_(*args, **kwargs)
    return outcome, time.perf_counter() - start


def slow_rows():
    """2ms per sprout row: a 10ms limit trips after a handful of rows."""
    return FaultPlan().add(
        "engine.sprout.row", "slow", delay=0.002, times=None
    )


class TestSproutDeadline:
    def test_generous_limit_is_exact(self):
        result = demo_session().sql(QUERY, engine="sprout", time_limit=60.0)
        assert "deadline_hit" not in result.stats
        assert all(row.probability().width == 0.0 for row in result.rows)

    def test_tight_limit_returns_sound_partial(self):
        exact = exact_probabilities(QUERY)
        with fault_plan(slow_rows()):
            result, elapsed = timed(
                demo_session().sql, QUERY, engine="sprout", time_limit=0.01
            )
        assert elapsed < 0.01 + OVERSHOOT
        assert result.stats["deadline_hit"] is True
        assert 0 < result.stats["rows_exact"] < result.stats["rows"]
        assert_sound(result, exact)
        # Finished rows are exact, pending rows are the full bracket.
        widths = sorted(row.probability().width for row in result.rows)
        assert widths[0] == 0.0 and widths[-1] == 1.0

    def test_raise_policy_carries_partial(self):
        exact = exact_probabilities(QUERY)
        with fault_plan(slow_rows()):
            with pytest.raises(QueryTimeoutError) as err:
                demo_session().sql(
                    QUERY, engine="sprout", time_limit=0.01,
                    on_timeout="raise",
                )
        partial = err.value.partial
        assert partial is not None
        assert partial.stats["deadline_hit"] is True
        assert err.value.elapsed is not None and err.value.elapsed > 0
        assert_sound(partial, exact)


class TestNaiveDeadline:
    def test_tight_limit_always_raises(self):
        # Possible-world enumeration has no sound intermediate state:
        # both policies raise, and the partial is explicitly absent.
        session = demo_session()
        for policy in ("partial", "raise"):
            start = time.perf_counter()
            with pytest.raises(QueryTimeoutError) as err:
                session.sql(
                    "SELECT kind FROM R",
                    engine="naive",
                    time_limit=0.01,
                    on_timeout=policy,
                )
            assert time.perf_counter() - start < 0.01 + OVERSHOOT
            assert err.value.partial is None

    def test_generous_limit_completes(self):
        result = demo_session().sql(
            "SELECT slot FROM B WHERE bid >= 50",
            engine="naive",
            time_limit=60.0,
        )
        assert "deadline_hit" not in result.stats


class TestApproxDeadline:
    def slow_round(self):
        """One 25ms stall before round 1: a 10ms limit is already spent
        when refinement starts, so every row degrades to [0, 1]."""
        return FaultPlan().add(
            "engine.approx.round", "slow", delay=0.025, times=1
        )

    def test_tight_limit_returns_sound_partial(self):
        exact = exact_probabilities(JOIN_QUERY)
        with fault_plan(self.slow_round()):
            result, elapsed = timed(
                demo_session().sql,
                JOIN_QUERY,
                engine="approx",
                mode="approx",
                epsilon=1e-9,
                time_limit=0.01,
            )
        assert elapsed < 0.01 + OVERSHOOT
        assert result.stats["deadline_hit"] is True
        assert result.stats["converged"] is False
        assert result.stats["max_width"] == 1.0
        assert_sound(result, exact)

    def test_raise_policy_carries_partial(self):
        with fault_plan(self.slow_round()):
            with pytest.raises(QueryTimeoutError) as err:
                demo_session().sql(
                    JOIN_QUERY,
                    engine="approx",
                    mode="approx",
                    epsilon=1e-9,
                    time_limit=0.01,
                    on_timeout="raise",
                )
        assert err.value.partial is not None
        assert_sound(err.value.partial, exact_probabilities(JOIN_QUERY))

    def test_snapshots_remain_sound_under_deadline(self):
        exact = exact_probabilities(JOIN_QUERY)
        with fault_plan(self.slow_round()):
            snapshots = list(
                demo_session().run_iter(
                    JOIN_QUERY,
                    engine="approx",
                    mode="approx",
                    epsilon=1e-9,
                    time_limit=0.01,
                )
            )
        assert snapshots
        for snapshot in snapshots:
            assert_sound(snapshot, exact)


class TestMonteCarloDeadline:
    def test_deadline_stops_sampling_with_bounded_overshoot(self):
        limit = 0.05
        result, elapsed = timed(
            demo_session().sql,
            JOIN_QUERY,
            engine="montecarlo",
            mode="sample",
            epsilon=1e-6,
            delta=0.01,
            time_limit=limit,
        )
        assert result.stats["deadline_hit"] is True
        assert elapsed < limit + OVERSHOOT
        # The final-round clamp keeps wall time close to the limit even
        # though a full doubled batch would have overshot it.
        assert result.stats["wall_seconds"] < limit + OVERSHOOT

    def test_raise_policy_carries_partial(self):
        with pytest.raises(QueryTimeoutError) as err:
            demo_session().sql(
                JOIN_QUERY,
                engine="montecarlo",
                mode="sample",
                epsilon=1e-6,
                delta=0.01,
                time_limit=0.02,
                on_timeout="raise",
            )
        partial = err.value.partial
        assert partial is not None
        assert partial.stats["samples"] > 0

    def test_overshoot_regression_with_slow_worlds(self):
        """The satellite regression: with injected per-world latency the
        engine used to overshoot ``time_limit`` by a whole doubled batch;
        the clamp bounds the overshoot to ~one slow sample."""
        limit = 0.1
        plan = FaultPlan().add(
            "engine.montecarlo.world", "slow", delay=0.001, times=None
        )
        with fault_plan(plan):
            _, elapsed = timed(
                demo_session().sql,
                JOIN_QUERY,
                engine="montecarlo",
                mode="sample",
                epsilon=1e-6,
                delta=0.01,
                time_limit=limit,
            )
        assert elapsed < limit + OVERSHOOT


class TestExactCompilerCheckpoint:
    def test_shannon_loop_respects_ambient_deadline(self):
        """The ⊔-node checkpoint inside exact compilation: a genuinely
        hard expression (Eq.-11 workload, exponential Shannon expansion)
        aborts within milliseconds of the deadline instead of running
        for its full compile time."""
        expr, registry = generate_condition(
            ExprParams(
                left_terms=120, variables=18, max_value=60, constant=30
            ),
            seed=3,
        )
        compiler = Compiler(registry, BOOLEAN)
        start = time.perf_counter()
        with deadline_scope(Deadline(0.01)):
            with pytest.raises(DeadlineExceeded):
                compiler.distribution(expr)
        assert time.perf_counter() - start < 0.01 + OVERSHOOT
