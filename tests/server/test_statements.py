"""The prepared-statement cache: normalisation, LRU, thread-safety."""

import threading

import pytest

from repro.errors import ParseError, QueryValidationError
from repro.server.statements import StatementCache, normalise_statement


class TestNormalisation:
    def test_whitespace_runs_collapse(self):
        assert (
            normalise_statement("SELECT   a\n  FROM\t R")
            == normalise_statement("SELECT a FROM R")
        )

    def test_leading_trailing_whitespace_stripped(self):
        assert normalise_statement("  SELECT a FROM R  ") == "SELECT a FROM R"

    def test_trailing_semicolons_dropped(self):
        assert normalise_statement("SELECT a FROM R;") == "SELECT a FROM R"
        assert normalise_statement("SELECT a FROM R ; ;") == "SELECT a FROM R"

    def test_string_literals_preserved_verbatim(self):
        # Two statements differing only inside a literal must NOT collide.
        a = normalise_statement("SELECT a FROM R WHERE b = 'x  y'")
        b = normalise_statement("SELECT a FROM R WHERE b = 'x y'")
        assert a != b
        # ... and whitespace inside the literal survives normalisation.
        assert "'x  y'" in a

    def test_doubled_quote_escapes_stay_inside_literal(self):
        key = normalise_statement("SELECT a FROM R WHERE b = 'it''s   ok'")
        assert "'it''s   ok'" in key

    def test_keyword_case_not_folded(self):
        assert (
            normalise_statement("select a from R")
            != normalise_statement("SELECT a FROM R")
        )

    def test_non_string_rejected(self):
        with pytest.raises(QueryValidationError):
            normalise_statement(42)


class TestStatementCache:
    def test_equivalent_texts_share_one_entry(self):
        cache = StatementCache()
        q1, hit1 = cache.get_or_parse("SELECT a, b FROM R")
        q2, hit2 = cache.get_or_parse("  SELECT   a, b\nFROM R ;")
        assert not hit1 and hit2
        assert q1 is q2
        assert len(cache) == 1
        assert cache.stats()["hits"] == 1
        assert cache.stats()["misses"] == 1

    def test_lru_eviction_counts(self):
        cache = StatementCache(max_entries=2)
        cache.get_or_parse("SELECT a FROM R")
        cache.get_or_parse("SELECT b FROM R")
        cache.get_or_parse("SELECT a FROM R")  # refresh: a is now MRU
        cache.get_or_parse("SELECT c FROM R")  # evicts b
        assert cache.stats()["evictions"] == 1
        _, hit_a = cache.get_or_parse("SELECT a FROM R")
        assert hit_a  # survived because it was refreshed
        _, hit_b = cache.get_or_parse("SELECT b FROM R")
        assert not hit_b  # was evicted

    def test_bad_bound_rejected(self):
        with pytest.raises(QueryValidationError):
            StatementCache(max_entries=0)

    def test_parse_errors_propagate_and_cache_nothing(self):
        cache = StatementCache()
        with pytest.raises(ParseError):
            cache.get_or_parse("SELECT FROM WHERE")
        assert len(cache) == 0
        assert cache.stats()["misses"] == 0

    def test_clear(self):
        cache = StatementCache()
        cache.get_or_parse("SELECT a FROM R")
        cache.clear()
        assert len(cache) == 0

    def test_concurrent_access_is_consistent(self):
        cache = StatementCache(max_entries=8)
        statements = [f"SELECT a FROM R WHERE b = {i}" for i in range(16)]
        errors = []

        def worker():
            try:
                for _ in range(50):
                    for sql in statements:
                        query, _ = cache.get_or_parse(sql)
                        assert query is not None
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        threads = [threading.Thread(target=worker) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        stats = cache.stats()
        assert len(cache) <= 8
        assert stats["hits"] + stats["misses"] == 4 * 50 * 16
