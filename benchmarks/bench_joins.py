"""Join-heavy benchmarks: star joins, chain joins, and a TPC-H Q3 shape.

Measures **step I only** — computing the pvc-table of symbolically
annotated result tuples (``SproutEngine.rewrite``) — on the query shapes
where the physical plan layer matters: equi-joins extracted from
``σ(× ...)``.  Three series:

* ``star``   — one probabilistic fact table joined to three certain
  dimension tables on surrogate keys, with a selective constant predicate
  on one dimension (the classic data-warehouse shape);
* ``chain``  — a linear join R₁ ⋈ R₂ ⋈ ... ⋈ Rₙ over adjacent keys;
* ``tpch_q3`` — a customer ⋈ orders ⋈ lineitem join with constant
  selections and a grouped SUM, in the style of TPC-H Q3.

A fourth series, ``per_world``, measures repeated *deterministic*
execution of the star and Q3 plans — the inner loop of the per-world
engines — comparing the tree-walking interpreter against the fused
kernels of :mod:`repro.codegen` (plan compiled and bound once, each
world one call).  Every point asserts the two paths produce bit-identical
answers on every world before recording a time.

Supports the shared ``--smoke`` / ``--json PATH`` / ``--baseline PATH``
flags; the committed pre-PR reference lives at
``benchmarks/baselines/bench_joins_pre_pr.json`` and the codegen
per-world reference at
``benchmarks/baselines/bench_joins_codegen.json``.
"""

from __future__ import annotations

if __package__ in (None, ""):  # direct script execution: python benchmarks/...
    import pathlib
    import sys

    sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent))

import random
import statistics
import time

from benchmarks.common import BenchReport, print_series, smoke_mode
from repro.algebra.expressions import Var
from repro.algebra.semiring import BOOLEAN
from repro.algebra.valuation import Valuation
from repro.codegen import kernel_for
from repro.db.pvc_table import PVCDatabase
from repro.engine.sprout import SproutEngine
from repro.prob.variables import VariableRegistry
from repro.query.ast import AggSpec, GroupAgg, Project, Select, product_of, relation
from repro.query.executor import execute_deterministic, prepare
from repro.query.predicates import cmp_, conj, eq

RUNS = 3

#: Full-sweep parameters (smoke mode trims each series to one tiny point).
STAR_FACT_ROWS = [500, 1000, 2000]
CHAIN_LENGTHS = [3, 4, 5]
TPCH_SCALES = [1, 2]


def _fresh_db() -> tuple[PVCDatabase, VariableRegistry]:
    registry = VariableRegistry()
    return PVCDatabase(registry=registry, semiring=BOOLEAN), registry


def build_star(fact_rows: int, dims: int = 3, dim_rows: int = 50, seed: int = 0):
    """A star schema: probabilistic fact, certain dimensions.

    The query joins the fact table to every dimension on its surrogate key
    and keeps only one dimension category (a 1-in-10 constant predicate).
    """
    rng = random.Random(seed)
    db, registry = _fresh_db()
    fact = db.create_table("fact", [f"fk{d}" for d in range(dims)] + ["measure"])
    for i in range(fact_rows):
        name = f"f{i}"
        registry.bernoulli(name, 0.5)
        keys = tuple(rng.randrange(dim_rows) for _ in range(dims))
        fact.add(keys + (rng.randint(1, 100),), Var(name))
    for d in range(dims):
        table = db.create_table(f"dim{d}", [f"d{d}_key", f"d{d}_cat"])
        for k in range(dim_rows):
            table.add((k, k % 10))
    atoms = [eq(f"fk{d}", f"d{d}_key") for d in range(dims)]
    atoms.append(eq("d0_cat", 3))
    query = Project(
        Select(
            product_of(relation("fact"), *(relation(f"dim{d}") for d in range(dims))),
            conj(*atoms),
        ),
        ["fk0", "measure", "d1_cat"],
    )
    return db, query


def build_chain(length: int, rows: int = 400, seed: int = 0):
    """A chain join R₁ ⋈ R₂ ⋈ ... over adjacent key equalities."""
    rng = random.Random(seed)
    db, registry = _fresh_db()
    domain = rows // 4
    for t in range(length):
        table = db.create_table(f"r{t}", [f"a{t}", f"b{t}"])
        for i in range(rows):
            name = f"r{t}_{i}"
            registry.bernoulli(name, 0.5)
            table.add((rng.randrange(domain), rng.randrange(domain)), Var(name))
    atoms = [eq(f"b{t}", f"a{t + 1}") for t in range(length - 1)]
    atoms.append(eq("a0", 1))
    query = Project(
        Select(
            product_of(*(relation(f"r{t}") for t in range(length))),
            conj(*atoms),
        ),
        ["a0", f"b{length - 1}"],
    )
    return db, query


def build_tpch_q3(scale: int = 1, seed: int = 0):
    """Customer ⋈ orders ⋈ lineitem with selections and a grouped SUM."""
    rng = random.Random(seed)
    db, registry = _fresh_db()
    customers, orders, lineitems = 30 * scale, 150 * scale, 600 * scale
    customer = db.create_table("customer", ["c_key", "c_segment"])
    for c in range(customers):
        customer.add((c, c % 5))
    order = db.create_table("orders", ["o_key", "o_custkey", "o_date"])
    for o in range(orders):
        order.add((o, rng.randrange(customers), rng.randint(1, 30)))
    lineitem = db.create_table("lineitem", ["l_orderkey", "l_price"])
    for i in range(lineitems):
        name = f"l{i}"
        registry.bernoulli(name, 0.5)
        lineitem.add((rng.randrange(orders), rng.randint(1, 500)), Var(name))
    joined = Select(
        product_of(relation("customer"), relation("orders"), relation("lineitem")),
        conj(
            eq("c_key", "o_custkey"),
            eq("o_key", "l_orderkey"),
            eq("c_segment", 1),
            cmp_("o_date", "<", 15),
        ),
    )
    query = GroupAgg(
        Project(joined, ["o_key", "l_price"]),
        ["o_key"],
        [AggSpec.of("revenue", "SUM", "l_price")],
    )
    return db, query


def measure_per_world(db, query, worlds: int, runs: int, seed: int = 7):
    """Interpreted vs compiled per-world execution over random worlds.

    The interpreted leg is what the per-world engines did before codegen:
    instantiate the referenced tables under a valuation, then run the
    prepared plan through the tree-walking executor.  The compiled leg is
    what they do now: bind the fused kernel once (hoisting deterministic
    tables, hash indexes and static subplans) and run one function per
    world.  Both legs are asserted bit-identical on every world first.
    """
    semiring = db.semiring
    prepared = prepare(query, db.catalog(), db.cardinalities())
    names = sorted(db.variables)
    referenced = list(dict.fromkeys(query.base_relations()))
    tables = [(name, db.tables[name]) for name in referenced]
    rng = random.Random(seed)
    assignments = [
        {name: rng.random() < 0.5 for name in names} for _ in range(worlds)
    ]
    kernel = kernel_for(prepared, semiring)
    assert kernel is not None, "plan unexpectedly has no compiled form"
    bound = kernel.bind(db, names)

    def interpreted(assignment):
        valuation = Valuation(assignment, semiring)
        world = {
            name: table.instantiate(valuation, semiring)
            for name, table in tables
        }
        return execute_deterministic(
            prepared, world, semiring, codegen=False
        )

    for assignment in assignments[: min(worlds, 25)]:
        expected = list(interpreted(assignment).tuples())
        actual = list(bound.run_assignment(assignment).items())
        assert actual == expected, "compiled/interpreted divergence"

    interp_times, compiled_times = [], []
    for _ in range(runs):
        start = time.perf_counter()
        for assignment in assignments:
            interpreted(assignment)
        interp_times.append(time.perf_counter() - start)
        start = time.perf_counter()
        for assignment in assignments:
            bound.run_assignment(assignment)
        compiled_times.append(time.perf_counter() - start)
    return statistics.mean(interp_times), statistics.mean(compiled_times)


def time_rewrite(db, query, runs: int = RUNS) -> tuple[float, float]:
    """Mean/stdev wall-clock of step I (symbolic result construction)."""
    engine = SproutEngine(db)
    times = []
    for _ in range(runs):
        start = time.perf_counter()
        engine.rewrite(query)
        times.append(time.perf_counter() - start)
    mean = statistics.mean(times)
    stdev = statistics.stdev(times) if len(times) > 1 else 0.0
    return mean, stdev


def main() -> None:
    smoke = smoke_mode()
    runs = 1 if smoke else RUNS
    report = BenchReport("bench_joins", runs=runs, smoke=smoke)

    fact_sweep = [120] if smoke else STAR_FACT_ROWS
    rows = []
    for fact_rows in fact_sweep:
        db, query = build_star(fact_rows)
        mean, stdev = time_rewrite(db, query, runs)
        rows.append(("star", fact_rows, f"{mean * 1000:.1f}ms", f"±{stdev * 1000:.1f}"))
        report.add("star", {"fact_rows": fact_rows, "runs": runs}, mean=mean, stdev=stdev)
    print_series("Star joins — fact ⋈ dim×3", ["series", "fact_rows", "mean", "stdev"], rows)

    chain_sweep = [3] if smoke else CHAIN_LENGTHS
    chain_rows = 80 if smoke else 400
    rows = []
    for length in chain_sweep:
        db, query = build_chain(length, rows=chain_rows)
        mean, stdev = time_rewrite(db, query, runs)
        rows.append(("chain", length, f"{mean * 1000:.1f}ms", f"±{stdev * 1000:.1f}"))
        report.add("chain", {"length": length, "rows": chain_rows, "runs": runs}, mean=mean, stdev=stdev)
    print_series("Chain joins — R₁ ⋈ ... ⋈ Rₙ", ["series", "length", "mean", "stdev"], rows)

    tpch_sweep = [1] if smoke else TPCH_SCALES
    rows = []
    for scale in tpch_sweep:
        db, query = build_tpch_q3(scale)
        mean, stdev = time_rewrite(db, query, runs)
        rows.append(("tpch_q3", scale, f"{mean * 1000:.1f}ms", f"±{stdev * 1000:.1f}"))
        report.add("tpch_q3", {"scale": scale, "runs": runs}, mean=mean, stdev=stdev)
    print_series("TPC-H Q3 shape — customer ⋈ orders ⋈ lineitem", ["series", "scale", "mean", "stdev"], rows)

    # Per-world deterministic execution: interpreter vs fused kernels.
    worlds = 20 if smoke else 200
    shapes = [
        ("star", build_star(120 if smoke else 500)),
        ("tpch_q3", build_tpch_q3(1)),
    ]
    rows = []
    for shape, (db, query) in shapes:
        interp, compiled = measure_per_world(db, query, worlds, runs)
        speedup = interp / compiled if compiled > 0 else 0.0
        rows.append(
            (
                shape,
                worlds,
                f"{interp * 1000:.1f}ms",
                f"{compiled * 1000:.1f}ms",
                f"{speedup:.2f}x",
            )
        )
        report.add(
            "per_world",
            {"shape": shape, "worlds": worlds, "runs": runs},
            mean_interpreted=interp,
            mean_compiled=compiled,
            mean=compiled,
            speedup_vs_interpreter=round(speedup, 3),
        )
    print_series(
        f"Per-world execution — interpreter vs compiled kernel ({worlds} worlds)",
        ["shape", "worlds", "interpreted", "compiled", "speedup"],
        rows,
    )

    report.finish()


if __name__ == "__main__":
    main()
