"""Unit tests for pvc-tables and pvc-databases (Definition 6)."""

import math

import pytest

from repro.algebra.expressions import ONE, Var
from repro.algebra.monoid import MIN
from repro.algebra.semimodule import MConst, aggsum, tensor
from repro.algebra.semiring import BOOLEAN, NATURALS
from repro.algebra.valuation import Valuation
from repro.db.pvc_table import PVCDatabase, PVCTable
from repro.db.schema import Schema
from repro.errors import SchemaError
from repro.prob.variables import VariableRegistry


class TestPVCTable:
    def test_add_and_iterate(self):
        table = PVCTable(Schema(["a"]))
        table.add((1,), Var("x"))
        table.add((2,))
        rows = list(table)
        assert rows[0].annotation == Var("x")
        assert rows[1].annotation == ONE
        assert len(table) == 2

    def test_arity_checked(self):
        with pytest.raises(SchemaError):
            PVCTable(Schema(["a", "b"])).add((1,))

    def test_variables_include_values(self):
        table = PVCTable(Schema(["a", "agg"], ["agg"]))
        alpha = aggsum(MIN, [tensor(Var("y"), MConst(MIN, 3))])
        table.add((1, alpha), Var("x"))
        assert table.variables == {"x", "y"}

    def test_value_and_module_dicts(self):
        schema = Schema(["a", "agg"], ["agg"])
        table = PVCTable(schema)
        alpha = aggsum(MIN, [tensor(Var("y"), MConst(MIN, 3))])
        table.add((1, alpha), Var("x"))
        row = table.rows[0]
        assert row.value_dict(schema)["a"] == 1
        assert row.module_values(schema) == {"agg": alpha}

    def test_pretty_contains_annotations(self):
        table = PVCTable(Schema(["sid", "shop"]))
        table.add((1, "M&S"), Var("x1"))
        text = table.pretty()
        assert "x1" in text and "shop" in text


class TestInstantiate:
    """Possible worlds of a pvc-table (Definition 6)."""

    def test_boolean_world(self):
        table = PVCTable(Schema(["a"]))
        table.add((1,), Var("x"))
        table.add((2,), Var("y"))
        nu = Valuation({"x": True, "y": False}, BOOLEAN)
        world = table.instantiate(nu, BOOLEAN)
        assert world.support() == {(1,)}

    def test_bag_world_keeps_multiplicities(self):
        table = PVCTable(Schema(["a"]))
        table.add((1,), Var("x"))
        nu = Valuation({"x": 3}, NATURALS)
        world = table.instantiate(nu, NATURALS)
        assert world.multiplicity((1,)) == 3

    def test_module_values_evaluate(self):
        table = PVCTable(Schema(["agg"], ["agg"]))
        alpha = aggsum(MIN, [tensor(Var("y"), MConst(MIN, 3))])
        table.add((alpha,), ONE)
        world = table.instantiate(Valuation({"y": False}, BOOLEAN), BOOLEAN)
        assert world.support() == {(math.inf,)}

    def test_duplicate_values_merge_in_world(self):
        table = PVCTable(Schema(["a"]))
        table.add((1,), Var("x"))
        table.add((1,), Var("y"))
        nu = Valuation({"x": True, "y": True}, BOOLEAN)
        assert len(table.instantiate(nu, BOOLEAN)) == 1


class TestPVCDatabase:
    def test_create_and_lookup(self):
        db = PVCDatabase()
        table = db.create_table("t", ["a"])
        assert db["t"] is table
        assert "t" in db

    def test_missing_table_raises(self):
        with pytest.raises(SchemaError, match="no table"):
            PVCDatabase()["missing"]

    def test_duplicate_table_rejected(self):
        db = PVCDatabase()
        db.create_table("t", ["a"])
        with pytest.raises(SchemaError, match="already"):
            db.create_table("t", ["a"])

    def test_database_variables(self):
        reg = VariableRegistry()
        db = PVCDatabase(registry=reg)
        t1 = db.create_table("t1", ["a"])
        t1.add((1,), Var("x"))
        t2 = db.create_table("t2", ["b"])
        t2.add((2,), Var("y"))
        assert db.variables == {"x", "y"}

    def test_repr_mentions_tables(self):
        db = PVCDatabase()
        db.create_table("t", ["a"])
        assert "t(0)" in repr(db)


class TestInsertHelpers:
    def test_insert_mints_fresh_variables(self):
        db = PVCDatabase()
        db.create_table("t", ["a"])
        first = db.insert("t", (1,), p=0.3)
        second = db.insert("t", (2,), p=0.6)
        assert isinstance(first, Var) and isinstance(second, Var)
        assert first.name != second.name
        assert db.registry[first.name][True] == 0.3

    def test_insert_avoids_registry_collisions(self):
        db = PVCDatabase()
        db.create_table("t", ["a"])
        db.registry.bernoulli("t_0", 0.9)  # name taken by someone else
        minted = db.insert("t", (1,), p=0.5)
        assert minted.name != "t_0"
        assert db.registry[minted.name][True] == 0.5

    def test_insert_certain_rows(self):
        db = PVCDatabase()
        db.create_table("t", ["a"])
        assert db.insert("t", (1,)) is ONE
        assert db.insert("t", (2,), p=1.0) is ONE
        assert len(db.registry) == 0

    def test_insert_named_variable_is_always_declared(self):
        from repro.errors import DistributionError

        db = PVCDatabase()
        db.create_table("t", ["a"])
        minted = db.insert("t", (1,), p=1.0, var="x9")
        assert minted == Var("x9") and "x9" in db.registry
        with pytest.raises(DistributionError, match="requires a probability"):
            db.insert("t", (2,), var="x10")
        with pytest.raises(DistributionError, match="cannot be combined"):
            db.insert("t", (3,), annotation=Var("x9"), var="x11")

    def test_insert_block_is_mutually_exclusive(self):
        from repro.db.worlds import enumerate_database_worlds

        reg = VariableRegistry()
        db = PVCDatabase(registry=reg, semiring=NATURALS)
        db.create_table("t", ["a"])
        db.insert_block("t", [((1,), 0.5), ((2,), 0.3)])
        together = sum(
            probability
            for world, probability in enumerate_database_worlds(db)
            if len(world["t"].support()) > 1
        )
        assert together == 0.0
        none = sum(
            probability
            for world, probability in enumerate_database_worlds(db)
            if not world["t"].support()
        )
        assert math.isclose(none, 0.2)

    def test_catalog_maps_names_to_schemas(self):
        db = PVCDatabase()
        db.create_table("t", ["a", "b"])
        assert db.catalog() == {"t": Schema(["a", "b"])}
