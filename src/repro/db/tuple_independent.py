"""Constructors for tuple-independent and BID tables.

Tuple-independent tables — every tuple annotated with its own fresh
Boolean variable — are the input class of the tractability results of
Section 6 and of all the paper's experiments.  Block-independent-disjoint
(BID) tables generalise them with blocks of mutually exclusive
alternatives; pvc-tables express a block through conditional expressions
``[x_b = i]`` over a single block variable, staying within the
independent-variable probability space of Definition 1.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.algebra.expressions import Var
from repro.db.pvc_table import PVCTable
from repro.db.schema import Schema
from repro.errors import DistributionError
from repro.prob.distribution import Distribution
from repro.prob.variables import VariableRegistry

__all__ = ["tuple_independent_table", "bid_table", "reassign_probability"]


def tuple_independent_table(
    attributes: Sequence[str],
    rows: Iterable[tuple[Sequence, float]],
    registry: VariableRegistry,
    prefix: str,
) -> PVCTable:
    """Build a tuple-independent pvc-table.

    Each ``(values, probability)`` row receives a fresh Boolean variable
    ``{prefix}{i}`` with ``P[⊤] = probability``, declared in ``registry``.

    >>> reg = VariableRegistry()
    >>> t = tuple_independent_table(["a"], [((1,), 0.5), ((2,), 0.9)], reg, "r")
    >>> [repr(row.annotation) for row in t]
    ['r0', 'r1']
    """
    table = PVCTable(Schema(attributes))
    for i, (values, probability) in enumerate(rows):
        name = f"{prefix}{i}"
        registry.bernoulli(name, probability)
        table.add(tuple(values), Var(name))
    return table


def bid_table(
    attributes: Sequence[str],
    blocks: Iterable[Sequence[tuple[Sequence, float]]],
    registry: VariableRegistry,
    prefix: str,
) -> PVCTable:
    """Build a block-independent-disjoint pvc-table.

    Each block is a sequence of ``(values, probability)`` alternatives that
    are mutually exclusive; probabilities within a block must sum to at
    most 1 (any remainder is the probability that *no* alternative is
    chosen).  Block ``b`` is driven by one integer variable ``{prefix}b``
    with ``P[i] = pᵢ`` (and ``P[0]`` the remainder), and alternative ``i``
    is annotated with the conditional expression ``[{prefix}b = i]``.

    Because the block variables range over ``{0, ..., k}``, BID databases
    must be queried under the **naturals** semiring (annotations evaluate
    to multiplicities 0/1); the Boolean semiring cannot coerce the block
    variable values.
    """
    table = PVCTable(Schema(attributes))
    for b, block in enumerate(blocks):
        table.add_block(block, registry, f"{prefix}{b}")
    return table


def reassign_probability(
    table: PVCTable,
    registry: VariableRegistry,
    values: Sequence,
    p: float,
) -> str:
    """Change the marginal probability of one tuple-independent row.

    Finds the row with exactly ``values`` (which must be annotated with a
    single Boolean variable — the tuple-independent encoding), reassigns
    its variable to ``Bernoulli(p)`` in ``registry``, and returns the
    variable name so callers can route the change through lineage-based
    cache invalidation (:meth:`repro.db.pvc_table.PVCDatabase.update`
    with ``p=`` does all of this in one step and should be preferred on a
    full database).
    """
    values = tuple(values)
    for row in table.rows:
        if row.values == values:
            if not isinstance(row.annotation, Var):
                raise DistributionError(
                    f"row {values!r} is not tuple-independent; its "
                    f"annotation is {row.annotation!r}"
                )
            registry.reassign(row.annotation.name, Distribution.bernoulli(p))
            return row.annotation.name
    raise DistributionError(f"no row with values {values!r}")
