"""Unit tests for variable registries."""

import pytest

from repro.errors import DistributionError
from repro.prob.distribution import Distribution
from repro.prob.variables import VariableRegistry


class TestDeclaration:
    def test_bernoulli(self):
        reg = VariableRegistry()
        reg.bernoulli("x", 0.3)
        assert reg["x"][True] == pytest.approx(0.3)

    def test_integer(self):
        reg = VariableRegistry()
        reg.integer("n", {0: 0.5, 3: 0.5})
        assert reg["n"][3] == pytest.approx(0.5)

    def test_integer_rejects_negative_values(self):
        reg = VariableRegistry()
        with pytest.raises(DistributionError, match="values in N"):
            reg.integer("n", {-1: 1.0})

    def test_constant(self):
        reg = VariableRegistry()
        reg.constant("c", 7)
        assert reg["c"].support() == {7}

    def test_redeclaration_same_distribution_ok(self):
        reg = VariableRegistry()
        reg.bernoulli("x", 0.3)
        reg.bernoulli("x", 0.3)
        assert len(reg) == 1

    def test_redeclaration_conflict_rejected(self):
        reg = VariableRegistry()
        reg.bernoulli("x", 0.3)
        with pytest.raises(DistributionError, match="already declared"):
            reg.bernoulli("x", 0.4)

    def test_unknown_lookup_raises(self):
        with pytest.raises(DistributionError, match="no declared"):
            VariableRegistry()["missing"]

    def test_constructor_from_mapping(self):
        reg = VariableRegistry({"x": Distribution.bernoulli(0.2)})
        assert "x" in reg


class TestViews:
    def test_names_sorted(self):
        reg = VariableRegistry()
        reg.bernoulli("b", 0.5)
        reg.bernoulli("a", 0.5)
        assert reg.names() == ["a", "b"]

    def test_restrict(self):
        reg = VariableRegistry()
        reg.bernoulli("a", 0.1)
        reg.bernoulli("b", 0.2)
        sub = reg.restrict(["a"])
        assert "a" in sub and "b" not in sub

    def test_iteration_and_len(self):
        reg = VariableRegistry()
        reg.bernoulli("a", 0.1)
        reg.bernoulli("b", 0.2)
        assert sorted(reg) == ["a", "b"]
        assert len(reg) == 2


class TestBooleanReduction:
    """Proposition 2's variable reduction for MIN/MAX."""

    def test_integer_variable_reduces(self):
        reg = VariableRegistry()
        reg.integer("n", {0: 0.25, 1: 0.5, 7: 0.25})
        reduced = reg.boolean_reduction()
        assert reduced["n"][False] == pytest.approx(0.25)
        assert reduced["n"][True] == pytest.approx(0.75)

    def test_boolean_variable_unchanged(self):
        reg = VariableRegistry()
        reg.bernoulli("x", 0.3)
        reduced = reg.boolean_reduction()
        assert reduced["x"].almost_equals(reg["x"])
