"""Exception hierarchy for the :mod:`repro` library.

All exceptions raised by the library derive from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while
still being able to distinguish the individual failure modes.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` library."""


class AlgebraError(ReproError):
    """An algebraic structure was used inconsistently.

    Examples: adding semimodule expressions over different monoids, or
    applying a comparison operator to values from an unordered carrier.
    """


class ParseError(ReproError):
    """An expression or SQL string could not be parsed."""

    def __init__(self, message: str, position: int | None = None):
        if position is not None:
            message = f"{message} (at position {position})"
        super().__init__(message)
        self.position = position


class DistributionError(ReproError):
    """A probability distribution is malformed.

    Raised for negative probabilities, probability mass exceeding one, or
    empty supports.
    """


class CompilationError(ReproError):
    """Expression compilation into a decomposition tree failed.

    Raised, for instance, when a compilation budget is exhausted or when an
    expression references a variable with no declared distribution.
    """


class SchemaError(ReproError):
    """A relation or pvc-table was constructed or combined inconsistently."""


class ConcurrentMutationError(ReproError):
    """The database was mutated underneath a whole-database sweep.

    Raised by consumers that read the database incrementally over time
    (possible-worlds enumeration in particular) when the database
    generation moves mid-sweep: the partial output would mix epochs.
    Point-in-time readers (scans, queries) never raise this — they
    operate on per-table snapshots.
    """


class QueryValidationError(ReproError):
    """A query violates the well-formedness constraints of Definition 5.

    The query language ``Q`` of the paper forbids projection, union and
    grouping on aggregation attributes; queries that do so are rejected
    with this error before evaluation.
    """


class WorldEnumerationError(ReproError):
    """Brute-force possible-world enumeration is infeasible or ill-defined."""


class QueryTimeoutError(ReproError):
    """A query hit its ``EvalSpec.time_limit`` deadline.

    Raised under ``spec.on_timeout == "raise"`` (and always by the naive
    engine, which has no sound partial answer).  ``partial`` carries the
    best *sound* result obtained before the deadline — every reported
    interval contains the exact answer — or ``None`` when no sound
    partial exists.  ``elapsed`` is the wall-clock time spent.
    """

    def __init__(self, message: str, partial=None, elapsed: float | None = None):
        super().__init__(message)
        self.partial = partial
        self.elapsed = elapsed
