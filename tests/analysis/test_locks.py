"""Fixture corpus for the lock-discipline / race checker.

Every rule gets the four-way treatment: a seeded violation is flagged,
the corrected version passes, an inline suppression silences it, and a
baseline entry grandfathers it.  The final test re-introduces the PR-6
admission-race pattern (check-then-increment of an inflight counter
outside its declared lock) and proves the checker catches it.
"""

from __future__ import annotations

import json

import pytest

from repro.analysis.checkers.locks import LockDisciplineChecker

CHECKERS = [LockDisciplineChecker()]


def rule_ids(result):
    return [finding.rule_id for finding in result.findings]

GUARDED_CLASS_HEADER = """\
    import threading

    class Counter:
        _shared_state_ = {"_lock": ("total", "events")}

        def __init__(self):
            self._lock = threading.Lock()
            self.total = 0
            self.events = []
"""


class TestUnguardedWrite:
    def test_flags_unguarded_assignment(self, analyze):
        result = analyze(
            GUARDED_CLASS_HEADER
            + """
        def bump(self):
            self.total += 1
    """,
            CHECKERS,
        )
        assert rule_ids(result) == ["race-unguarded-write"]
        assert "total" in result.findings[0].message

    def test_passes_guarded_assignment(self, analyze):
        result = analyze(
            GUARDED_CLASS_HEADER
            + """
        def bump(self):
            with self._lock:
                self.total += 1
    """,
            CHECKERS,
        )
        assert result.clean

    def test_flags_unguarded_mutating_method(self, analyze):
        result = analyze(
            GUARDED_CLASS_HEADER
            + """
        def note(self, event):
            self.events.append(event)
    """,
            CHECKERS,
        )
        assert rule_ids(result) == ["race-unguarded-write"]

    def test_flags_unguarded_subscript_store(self, analyze):
        result = analyze(
            """
    import threading

    class Stats:
        _shared_state_ = {"_lock": ("counts",)}

        def __init__(self):
            self._lock = threading.Lock()
            self.counts = {}

        def bump(self, key):
            self.counts[key] = self.counts.get(key, 0) + 1
    """,
            CHECKERS,
        )
        assert rule_ids(result) == ["race-unguarded-write"]

    def test_init_family_is_exempt(self, analyze):
        # __init__ runs before the object is shared — no findings even
        # though it assigns every declared field without the lock.
        result = analyze(GUARDED_CLASS_HEADER, CHECKERS)
        assert result.clean

    def test_locked_suffix_helper_assumes_lock_held(self, analyze):
        result = analyze(
            GUARDED_CLASS_HEADER
            + """
        def _bump_locked(self):
            self.total += 1
    """,
            CHECKERS,
        )
        assert result.clean

    def test_module_level_declaration(self, analyze):
        flagged = analyze(
            """
    import threading

    _LOCK = threading.Lock()
    _STATS = {"hits": 0}
    _shared_state_ = {"_LOCK": ("_STATS",)}

    def bump():
        _STATS["hits"] += 1
    """,
            CHECKERS,
        )
        assert rule_ids(flagged) == ["race-unguarded-write"]

        result = analyze(
            """
    import threading

    _LOCK = threading.Lock()
    _STATS = {"hits": 0}
    _shared_state_ = {"_LOCK": ("_STATS",)}

    def bump():
        with _LOCK:
            _STATS["hits"] += 1
    """,
            CHECKERS,
        )
        assert result.clean

    def test_suppression_silences_and_is_marked_used(self, analyze):
        result = analyze(
            GUARDED_CLASS_HEADER
            + """
        def bump(self):
            self.total += 1  # repro: allow(race-unguarded-write)
    """,
            CHECKERS,
        )
        assert result.clean
        assert [f.rule_id for f in result.suppressed] == [
            "race-unguarded-write"
        ]

    def test_baseline_grandfathers_finding(self, analyze, tmp_path):
        source = GUARDED_CLASS_HEADER + """
        def bump(self):
            self.total += 1
    """
        flagged = analyze(source, CHECKERS)
        assert len(flagged.findings) == 1
        baseline_path = tmp_path / "baseline.json"
        baseline_path.write_text(
            json.dumps(
                {
                    "findings": [
                        {
                            "file": flagged.findings[0].file,
                            "rule": flagged.findings[0].rule_id,
                            "message": flagged.findings[0].message,
                            "why": "fixture: grandfathered on purpose",
                        }
                    ]
                }
            )
        )
        result = analyze(source, CHECKERS, baseline=str(baseline_path))
        assert result.clean
        assert [f.rule_id for f in result.baselined] == [
            "race-unguarded-write"
        ]


class TestAwaitUnderLock:
    def test_flags_await_while_holding_lock(self, analyze):
        result = analyze(
            """
    import threading

    class Server:
        _shared_state_ = {"_lock": ("inflight",)}

        def __init__(self):
            self._lock = threading.Lock()
            self.inflight = 0

        async def handle(self, work):
            with self._lock:
                self.inflight += 1
                await work()
    """,
            CHECKERS,
        )
        assert rule_ids(result) == ["race-await-under-lock"]

    def test_passes_await_after_release(self, analyze):
        result = analyze(
            """
    import threading

    class Server:
        _shared_state_ = {"_lock": ("inflight",)}

        def __init__(self):
            self._lock = threading.Lock()
            self.inflight = 0

        async def handle(self, work):
            with self._lock:
                self.inflight += 1
            await work()
    """,
            CHECKERS,
        )
        assert result.clean


class TestUnlockedHelperCall:
    def test_flags_helper_called_without_lock(self, analyze):
        result = analyze(
            GUARDED_CLASS_HEADER
            + """
        def _bump_locked(self):
            self.total += 1

        def bump(self):
            self._bump_locked()
    """,
            CHECKERS,
        )
        assert rule_ids(result) == ["race-unlocked-helper-call"]

    def test_passes_helper_called_under_lock(self, analyze):
        result = analyze(
            GUARDED_CLASS_HEADER
            + """
        def _bump_locked(self):
            self.total += 1

        def bump(self):
            with self._lock:
                self._bump_locked()
    """,
            CHECKERS,
        )
        assert result.clean


class TestNestedFunctions:
    def test_nested_function_does_not_inherit_held_locks(self, analyze):
        # The closure runs later — possibly on another thread with the
        # lock long released — so the write inside it must be flagged
        # even though it is lexically under the with block.
        result = analyze(
            GUARDED_CLASS_HEADER
            + """
        def deferred(self, schedule):
            with self._lock:
                def callback():
                    self.total += 1
                schedule(callback)
    """,
            CHECKERS,
        )
        assert rule_ids(result) == ["race-unguarded-write"]


class TestAdmissionRaceRedetection:
    """Re-introduce the PR-6 admission race; the checker must catch it.

    The original bug: ``_admit`` read ``_inflight`` against the limits
    and the caller incremented it afterwards, both without a lock — a
    burst of concurrent arrivals all read the same stale count and
    overshot ``hard_limit``.  The fixed server declares ``_inflight``
    under ``_counters_lock`` in ``_shared_state_``; re-introducing the
    unlocked increment must trip ``race-unguarded-write``.
    """

    RACY = """
    import threading

    class QueryServer:
        _shared_state_ = {
            "_counters_lock": ("_counters", "_inflight", "_draining"),
        }

        def __init__(self):
            self._counters_lock = threading.Lock()
            self._counters = {"shed": 0}
            self._inflight = 0
            self._draining = False

        def _admit(self, hard_limit):
            if self._inflight >= hard_limit:
                self._counters["shed"] += 1
                raise RuntimeError("overloaded")
            return False

        async def execute(self, payload):
            degraded = self._admit(32)
            self._inflight += 1
            try:
                return await self._run(payload)
            finally:
                self._inflight -= 1
    """

    FIXED = """
    import threading

    class QueryServer:
        _shared_state_ = {
            "_counters_lock": ("_counters", "_inflight", "_draining"),
        }

        def __init__(self):
            self._counters_lock = threading.Lock()
            self._counters = {"shed": 0}
            self._inflight = 0
            self._draining = False

        def _admit(self, hard_limit):
            with self._counters_lock:
                if self._inflight >= hard_limit:
                    self._counters["shed"] += 1
                    raise RuntimeError("overloaded")
                self._inflight += 1
                return False

        def _release_slot(self):
            with self._counters_lock:
                self._inflight -= 1

        async def execute(self, payload):
            degraded = self._admit(32)
            try:
                return await self._run(payload)
            finally:
                self._release_slot()
    """

    def test_reintroduced_admission_race_is_flagged(self, analyze):
        result = analyze(self.RACY, CHECKERS)
        rules = rule_ids(result)
        # The shed-counter bump, the post-admit increment and the
        # finally-decrement are each unguarded read-modify-writes.
        assert rules.count("race-unguarded-write") == 3
        assert any("_inflight" in f.message for f in result.findings)

    def test_fixed_admission_pattern_is_clean(self, analyze):
        result = analyze(self.FIXED, CHECKERS)
        assert result.clean

    def test_shipped_server_declares_the_discipline(self):
        import repro.server.app as app

        assert "_counters_lock" in app.QueryServer._shared_state_
        assert "_inflight" in app.QueryServer._shared_state_["_counters_lock"]


if __name__ == "__main__":
    raise SystemExit(pytest.main([__file__, "-v"]))
