"""Tests for the brute-force possible-worlds engine."""

import math

import pytest

from repro.algebra.expressions import Var
from repro.algebra.semiring import BOOLEAN, NATURALS
from repro.db.pvc_table import PVCDatabase
from repro.db.relation import Relation
from repro.db.schema import Schema
from repro.engine.naive import NaiveEngine, evaluate_deterministic
from repro.prob.variables import VariableRegistry
from repro.query.ast import (
    AggSpec,
    Extend,
    GroupAgg,
    Product,
    Project,
    Select,
    Union,
    relation,
)
from repro.query.predicates import cmp_, eq


def simple_db():
    reg = VariableRegistry()
    db = PVCDatabase(registry=reg, semiring=BOOLEAN)
    r = db.create_table("R", ["a", "v"])
    reg.bernoulli("x", 0.5)
    reg.bernoulli("y", 0.4)
    r.add((1, 10), Var("x"))
    r.add((1, 20), Var("y"))
    return db


class TestDeterministicEvaluation:
    def world(self):
        rel = Relation(Schema(["a", "v"]), BOOLEAN)
        rel.add((1, 10), True)
        rel.add((1, 20), True)
        rel.add((2, 30), True)
        return {"R": rel}

    def test_select(self):
        result = evaluate_deterministic(
            Select(relation("R"), eq("a", 1)), self.world()
        )
        assert result.support() == {(1, 10), (1, 20)}

    def test_project(self):
        result = evaluate_deterministic(
            Project(relation("R"), ["a"]), self.world()
        )
        assert result.support() == {(1,), (2,)}

    def test_extend(self):
        result = evaluate_deterministic(
            Extend(relation("R"), "a2", "a"), self.world()
        )
        assert (1, 10, 1) in result.support()

    def test_group_aggregate(self):
        query = GroupAgg(relation("R"), ["a"], [AggSpec.of("m", "MIN", "v")])
        result = evaluate_deterministic(query, self.world())
        assert result.support() == {(1, 10), (2, 30)}

    def test_count_star(self):
        query = GroupAgg(relation("R"), [], [AggSpec.of("n", "COUNT")])
        result = evaluate_deterministic(query, self.world())
        assert result.support() == {(3,)}

    def test_unknown_relation_raises(self):
        from repro.errors import QueryValidationError

        with pytest.raises(QueryValidationError):
            evaluate_deterministic(relation("Z"), self.world())


class TestTupleProbabilities:
    def test_base_relation_probabilities(self):
        engine = NaiveEngine(simple_db())
        probs = engine.tuple_probabilities(relation("R"))
        assert probs[(1, 10)] == pytest.approx(0.5)
        assert probs[(1, 20)] == pytest.approx(0.4)

    def test_projection_merges_probability(self):
        engine = NaiveEngine(simple_db())
        probs = engine.tuple_probabilities(Project(relation("R"), ["a"]))
        assert probs[(1,)] == pytest.approx(1 - 0.5 * 0.6)

    def test_aggregate_outcomes_are_distinct_answers(self):
        engine = NaiveEngine(simple_db())
        query = GroupAgg(relation("R"), ["a"], [AggSpec.of("s", "SUM", "v")])
        probs = engine.tuple_probabilities(query)
        assert probs[(1, 30)] == pytest.approx(0.5 * 0.4)
        assert probs[(1, 10)] == pytest.approx(0.5 * 0.6)
        assert probs[(1, 20)] == pytest.approx(0.5 * 0.4)
        assert (1, 0) not in probs  # empty group produces no tuple

    def test_global_aggregate_exists_in_every_world(self):
        engine = NaiveEngine(simple_db())
        query = GroupAgg(relation("R"), [], [AggSpec.of("m", "MIN", "v")])
        probs = engine.tuple_probabilities(query)
        assert sum(probs.values()) == pytest.approx(1.0)
        assert probs[(math.inf,)] == pytest.approx(0.5 * 0.6)


class TestMultiplicityDistribution:
    def test_bag_semantics_multiplicities(self):
        reg = VariableRegistry()
        db = PVCDatabase(registry=reg, semiring=NATURALS)
        r = db.create_table("R", ["a"])
        reg.integer("m", {0: 0.25, 1: 0.5, 2: 0.25})
        r.add((1,), Var("m"))
        engine = NaiveEngine(db)
        dist = engine.multiplicity_distribution(relation("R"), (1,))
        assert dist[0] == pytest.approx(0.25)
        assert dist[2] == pytest.approx(0.25)

    def test_projection_adds_multiplicities(self):
        reg = VariableRegistry()
        db = PVCDatabase(registry=reg, semiring=NATURALS)
        r = db.create_table("R", ["a", "b"])
        reg.integer("m", {1: 0.5, 2: 0.5})
        reg.integer("n", {1: 1.0})
        r.add((1, 10), Var("m"))
        r.add((1, 20), Var("n"))
        engine = NaiveEngine(db)
        dist = engine.multiplicity_distribution(
            Project(relation("R"), ["a"]), (1,)
        )
        assert dist[2] == pytest.approx(0.5)
        assert dist[3] == pytest.approx(0.5)


class TestAnswerRelationDistribution:
    def test_full_answer_distribution(self):
        engine = NaiveEngine(simple_db())
        dist = engine.answer_relation_distribution(Project(relation("R"), ["a"]))
        assert dist[frozenset()] == pytest.approx(0.5 * 0.6)
        assert dist[frozenset({(1,)})] == pytest.approx(1 - 0.3)
