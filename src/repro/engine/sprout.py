"""The SPROUT-style engine: rewrite, compile, compute probabilities.

Mirrors the paper's prototype architecture (Section 7): query evaluation
has two steps — (I) computing the result tuples with symbolic annotations
via the Figure-4 rewriting, and (II) computing probability distributions
for those annotations by compilation into d-trees.  The engine reports the
same timing breakdown the experiments use:

* ``Q0``   — evaluating the query on the deterministic database (no
  expression or probability computation);
* ``⟦·⟧``  — constructing the expressions (step I);
* ``P(·)`` — computing the probability distributions (step II).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Iterator

from repro.algebra.expressions import SemiringExpr
from repro.algebra.semimodule import ModuleExpr
from repro.algebra.valuation import Valuation
from repro.core.compile import Compiler, distribution_task
from repro.core.joint import JointCompiler
from repro.db.pvc_table import PVCDatabase, PVCTable
from repro.db.relation import Relation
from repro.db.schema import Schema
from repro.engine.spec import ProbInterval
from repro.errors import CompilationError
from repro.parallel import pool as parallel_pool
from repro.parallel.reducer import merge_stat_sums
from repro.parallel.shards import resolve_workers
from repro.prob.distribution import Distribution
from repro.query.ast import Query
from repro.resilience.deadline import DeadlineExceeded, current_deadline
from repro.resilience.faults import fault_point
from repro.query.executor import (
    PreparedQuery,
    execute_deterministic,
    execute_symbolic,
    prepare,
)

__all__ = ["SproutEngine", "QueryResult", "ResultRow"]


def _base_compiler(source) -> Compiler:
    """The underlying :class:`Compiler` of a distribution source.

    Sources are either a :class:`Compiler` or a session-level cache
    wrapping one (see :class:`repro.engine.base.CompilationCache`).
    """
    return getattr(source, "compiler", source)


@dataclass
class ResultRow:
    """One answer tuple with its symbolic and probabilistic views.

    ``_compiler`` is any object exposing ``distribution(expr)`` and
    ``semiring`` — a plain :class:`Compiler` or a shared per-session
    compilation cache.  Rows produced by engines without symbolic
    annotations (brute-force, Monte-Carlo) carry ``_compiler=None`` and a
    precomputed probability instead.

    Probabilities are interval-valued
    (:class:`~repro.engine.spec.ProbInterval`): exact engines report
    zero-width intervals, the approximate engines report the bracket they
    actually established.  Since intervals subclass :class:`float`
    (midpoint-valued), code written against point probabilities keeps
    working unchanged.
    """

    schema: Schema
    values: tuple
    annotation: SemiringExpr
    _compiler: Compiler | None = field(repr=False, compare=False, default=None)
    _probability: float | None = field(repr=False, compare=False, default=None)
    _annotation_dist: Distribution | None = field(
        repr=False, compare=False, default=None
    )

    def probability(self) -> ProbInterval:
        """``P[t ∈ answer]`` — the annotation is non-zero (present).

        Memoized: repeated calls (and :meth:`QueryResult.pretty`,
        :meth:`QueryResult.to_dicts`, ...) never recompile the d-tree.
        Returns a :class:`~repro.engine.spec.ProbInterval` — zero-width
        when the probability is exactly known.
        """
        if self._probability is None:
            dist = self.annotation_distribution()
            zero = self._compiler.semiring.zero
            self._probability = ProbInterval.point(1.0 - dist[zero])
        elif not isinstance(self._probability, ProbInterval):
            self._probability = ProbInterval.point(self._probability)
        return self._probability

    def probability_interval(self) -> ProbInterval:
        """Alias of :meth:`probability`, named for interval consumers."""
        return self.probability()

    def annotation_distribution(self) -> Distribution:
        """Distribution of the annotation value (multiplicity under N)."""
        if self._annotation_dist is None:
            if self._compiler is None:
                raise CompilationError(
                    "row carries no symbolic annotation compiler; annotation "
                    "distributions are only available from the sprout engine"
                )
            self._annotation_dist = self._compiler.distribution(self.annotation)
        return self._annotation_dist

    def module_attributes(self) -> dict[str, ModuleExpr]:
        """The semimodule-valued attributes of this row."""
        return {
            name: value
            for name, value in zip(self.schema.attributes, self.values)
            if isinstance(value, ModuleExpr)
        }

    def value_distribution(self, attribute: str) -> Distribution:
        """Marginal distribution of a semimodule-valued attribute.

        Note this marginal ignores whether the tuple is present; use
        :meth:`answer_probabilities` for the joint semantics.
        """
        value = self.values[self.schema.index(attribute)]
        if not isinstance(value, ModuleExpr):
            return Distribution.point(value)
        return self._compiler.distribution(value)

    def conditional_value_distribution(self, attribute: str) -> Distribution:
        """Distribution of an aggregate value *given the tuple is present*.

        Joint-compiles the annotation with the attribute's semimodule
        expression and conditions on a non-zero annotation.  This is the
        quantity a user typically wants reported next to
        :meth:`probability` — e.g. "given the group exists, how is its
        SUM distributed?".
        """
        value = self.values[self.schema.index(attribute)]
        if not isinstance(value, ModuleExpr):
            return Distribution.point(value)
        zero = self._compiler.semiring.zero
        joint = JointCompiler(_base_compiler(self._compiler)).joint_distribution(
            [self.annotation, value]
        )
        conditioned = joint.condition(lambda outcome: outcome[0] != zero)
        return conditioned.map(lambda outcome: outcome[1])

    def expected_value(self, attribute: str) -> float:
        """Expectation of an aggregate value given the tuple is present."""
        return self.conditional_value_distribution(attribute).expectation()

    def answer_probabilities(self) -> dict[tuple, float]:
        """``P[t present with concrete values v]`` for each outcome ``v``.

        Joint-compiles the annotation with all semimodule values of the
        row (Section 5, "Compiling Joint Probability Distributions") and
        returns the distribution over fully concrete answer tuples,
        restricted to worlds where the tuple is present.
        """
        module_attrs = self.module_attributes()
        if not module_attrs:
            probability = self.probability()
            if probability <= 1e-15:
                return {}
            return {self.values: probability}
        zero = self._compiler.semiring.zero
        exprs = [self.annotation] + list(module_attrs.values())
        joint = JointCompiler(_base_compiler(self._compiler)).joint_distribution(exprs)
        results: dict[tuple, float] = {}
        names = list(module_attrs)
        for outcome, probability in joint.items():
            presence, *module_values = outcome
            if presence == zero or probability <= 1e-15:
                continue
            substitution = dict(zip(names, module_values))
            concrete = tuple(
                substitution[name] if name in substitution else value
                for name, value in zip(self.schema.attributes, self.values)
            )
            results[concrete] = results.get(concrete, 0.0) + probability
        return results

    def __repr__(self):
        return f"ResultRow({self.values!r}, Φ={self.annotation!r})"


@dataclass
class QueryResult:
    """Answer pvc-table plus probabilities and per-run diagnostics.

    The common result type of *all* engines (sprout, approx, naive,
    montecarlo); ``engine`` names the engine that produced it.
    ``timings`` keeps the paper's step breakdown; ``stats`` is the
    uniform diagnostics surface — wall time plus engine-specific counters
    (samples drawn, Shannon expansions spent, cache hits, convergence).
    """

    schema: Schema
    rows: list[ResultRow]
    timings: dict[str, float]
    engine: str = "sprout"
    stats: dict = field(default_factory=dict)

    def __iter__(self) -> Iterator[ResultRow]:
        return iter(self.rows)

    def __len__(self) -> int:
        return len(self.rows)

    def to_dicts(self, include_probability: bool = True) -> list[dict]:
        """The rows as attribute dictionaries, probability included.

        Symbolic (semimodule) aggregate values are passed through as-is;
        use the per-row distribution accessors for their distributions.
        """
        dicts = []
        for row in self.rows:
            record = dict(zip(self.schema.attributes, row.values))
            if include_probability:
                record["probability"] = row.probability()
            dicts.append(record)
        return dicts

    def top_k(self, k: int, by: str = "probability") -> "QueryResult":
        """The ``k`` highest-ranked rows as a new :class:`QueryResult`.

        ``by`` is ``"probability"`` (default) or the name of an attribute
        holding concrete (non-symbolic) values.

        Probability ranking is interval-aware: rows sort by interval
        midpoint, and the result's ``stats["top_k_decided"]`` reports
        whether the interval separation already *proves* the selected
        set — every selected row's lower bound at or above every excluded
        row's upper bound.  Anytime consumers
        (:meth:`repro.session.Session.run_iter`) use this as their early
        termination signal: once the membership is decided there is no
        point refining further.

        The flag is exactly as strong as the intervals: exact engines and
        the bounds/(ε, δ) modes back it with their guarantee, while
        legacy fixed-budget Monte-Carlo estimates (plain ``samples=``,
        no spec) are zero-width point estimates *without* one, so their
        "decided" ranking is only as good as the sample.
        """
        stats = dict(self.stats)
        if by == "probability":
            intervals = [row.probability() for row in self.rows]
            order = sorted(
                range(len(self.rows)),
                key=lambda i: (intervals[i].midpoint, intervals[i].high),
                reverse=True,
            )
            selected, excluded = order[:k], order[k:]
            decided = not excluded or not selected or (
                min(intervals[i].low for i in selected)
                >= max(intervals[i].high for i in excluded)
            )
            stats["top_k_decided"] = decided
            rows = [self.rows[i] for i in selected]
        else:
            # Interval separation says nothing about a value ranking; do
            # not carry a verdict over from an earlier probability top-k.
            stats.pop("top_k_decided", None)
            index = self.schema.index(by)
            rows = sorted(
                self.rows, key=lambda row: row.values[index], reverse=True
            )[:k]
        return QueryResult(
            self.schema, rows, dict(self.timings), self.engine, stats
        )

    def tuple_probabilities(self) -> dict[tuple, float]:
        """``P[t ∈ answer]`` over all rows, on fully concrete tuples.

        Matches :meth:`repro.engine.naive.NaiveEngine.tuple_probabilities`
        and is the equivalence interface between the two engines.
        """
        results: dict[tuple, float] = {}
        for row in self.rows:
            for values, probability in row.answer_probabilities().items():
                results[values] = results.get(values, 0.0) + probability
        return results

    def pretty(self) -> str:
        lines = []
        for row in self.rows:
            lines.append(
                f"{row.values!r}  P={row.probability():.6g}  Φ={row.annotation!r}"
            )
        return "\n".join(lines)

    def __repr__(self):
        return f"QueryResult(engine={self.engine!r}, rows={len(self.rows)})"


class SproutEngine:
    """End-to-end probabilistic query answering on pvc-databases.

    >>> # See examples/quickstart.py for a complete walk-through.
    """

    def __init__(
        self,
        db: PVCDatabase,
        distribution_source=None,
        plan_source=None,
        **compiler_options,
    ):
        self.db = db
        self.compiler_options = compiler_options
        #: Optional shared distribution source (e.g. a per-session
        #: :class:`~repro.engine.base.CompilationCache`).  When set, runs
        #: reuse it — and its d-tree memo — instead of building a fresh
        #: :class:`Compiler` per query, so repeated and overlapping
        #: annotations never recompile.
        self.distribution_source = distribution_source
        #: Optional shared prepared-plan source (e.g. a server-wide
        #: :class:`~repro.engine.base.PlanCache`).  Looked up by
        #: structural query equality plus database statistics, so a plan
        #: prepared by one session is reused by every session sharing the
        #: cache.
        self.plan_source = plan_source
        self._prepared_cache: tuple | None = None

    def prepare(self, query: Query) -> PreparedQuery:
        """Run stages 1-2 of step I: logical optimizer + physical planner.

        Memoized per query object and per database statistics, so a query
        evaluated repeatedly (benchmark loops, cached sessions) is planned
        once.  With a shared ``plan_source`` the lookup extends across
        sessions: structurally equal queries over a database with the same
        statistics reuse one prepared plan.

        Mutation safety: a :class:`PreparedQuery` is *data-independent*
        (its per-op caches hold compiled accessors, never row data), so
        reuse across mutations is sound.  The cardinality fingerprint is
        still the right key — it is exactly what the greedy join planner
        consumed, so an equal-size update reuses the plan (as a fresh
        session would plan identically) while inserts/deletes re-plan
        (as a fresh session would).  That keeps post-mutation answers
        bit-identical to a from-scratch session, row order included.
        """
        fingerprint = tuple(
            (name, len(table)) for name, table in self.db.tables.items()
        )
        cached = self._prepared_cache
        if (
            cached is not None
            and cached[0] is query
            and cached[1] == fingerprint
        ):
            return cached[2]
        prepared = None
        if self.plan_source is not None:
            prepared = self.plan_source.get(query, fingerprint)
        if prepared is None:
            prepared = prepare(
                query, self.db.catalog(), self.db.cardinalities(), optimize=True
            )
            if self.plan_source is not None:
                self.plan_source.put(query, fingerprint, prepared)
        self._prepared_cache = (query, fingerprint, prepared)
        return prepared

    def rewrite(self, query: Query) -> PVCTable:
        """Step I only: the pvc-table of symbolic result tuples (⟦·⟧)."""
        return execute_symbolic(self.prepare(query), self.db)

    def run(
        self,
        query: Query,
        compute_probabilities: bool = True,
        workers: int | str | None = None,
    ) -> QueryResult:
        """Evaluate ``query``; returns rows, probabilities and timings.

        ``workers`` parallelises step II: independent result-row
        annotations (per-group aggregates, multi-tuple answers) compile
        concurrently on a process pool, and the per-chunk distributions
        merge back into the session's compilation cache.  Compilation is
        deterministic, so results are identical for any worker count;
        pool failures degrade to the serial path with
        ``stats["parallel_fallback"]`` recording why.
        """
        start = time.perf_counter()
        table = execute_symbolic(self.prepare(query), self.db)
        rewrite_seconds = time.perf_counter() - start

        compiler = self.distribution_source
        if compiler is None:
            compiler = Compiler(
                self.db.registry, self.db.semiring, **self.compiler_options
            )
        hits_before = getattr(compiler, "hits", None)
        misses_before = getattr(compiler, "misses", None)
        rows = [
            ResultRow(table.schema, row.values, row.annotation, compiler)
            for row in table
        ]
        parallel_stats: dict = {}
        probability_seconds = 0.0
        rows_exact = len(rows)
        deadline_hit = False
        if compute_probabilities:
            start = time.perf_counter()
            effective = resolve_workers(workers)
            if effective is not None:
                parallel_stats = self._parallel_distributions(
                    rows, compiler, effective
                )
            # Per-row cooperative deadline loop.  Step I enumerated the
            # *complete* candidate row set above, so degrading here is
            # sound: rows compiled before the deadline keep their exact
            # zero-width intervals, the rest report the vacuous [0, 1].
            deadline = current_deadline()
            rows_exact = 0
            for index, row in enumerate(rows):
                if deadline_hit or (deadline is not None and deadline.expired()):
                    deadline_hit = True
                    row._probability = ProbInterval.unknown()
                    continue
                fault_point("engine.sprout.row")
                try:
                    row.probability()
                except DeadlineExceeded:
                    # The ⊔-node checkpoint fired mid-compile; this
                    # row's d-tree is incomplete, so it is unknown too.
                    deadline_hit = True
                    row._probability = ProbInterval.unknown()
                    continue
                rows_exact += 1
            probability_seconds = time.perf_counter() - start
        timings = {
            "rewrite_seconds": rewrite_seconds,
            "probability_seconds": probability_seconds,
        }
        stats = {
            "wall_seconds": rewrite_seconds + probability_seconds,
            "rows": len(rows),
        }
        if deadline_hit:
            stats["deadline_hit"] = True
            stats["rows_exact"] = rows_exact
        stats.update(parallel_stats)
        if hits_before is not None:
            stats["cache_hits"] = compiler.hits - hits_before
            stats["cache_misses"] = compiler.misses - misses_before
        return QueryResult(table.schema, rows, timings, stats=stats)

    def _parallel_distributions(
        self, rows: list[ResultRow], source, workers: int
    ) -> dict:
        """Compile the rows' annotation distributions across a pool.

        Tasks are chunks of *unique, normalized, not-yet-cached*
        annotations; results are written onto the rows' distribution
        memo and absorbed into the distribution source when it is a
        session :class:`~repro.engine.base.CompilationCache` (so later
        runs, ``pretty()`` calls, and accessor lookups hit the cache
        exactly as if the compile had happened in-process).
        """
        normalize = getattr(source, "normalize", None)
        cached = getattr(source, "cached", None)
        by_key: dict = {}
        for row in rows:
            key = normalize(row.annotation) if normalize else row.annotation
            if not key.variables:
                continue  # constant annotation: compiling it is trivial
            existing = cached(key) if cached is not None else None
            if existing is not None:
                row._annotation_dist = existing
                continue
            by_key.setdefault(key, []).append(row)
        pending = list(by_key)
        stats = {"parallel_compiled": len(pending)}
        if len(pending) < 2:
            stats["workers"] = 1
            return stats
        chunk_count = min(len(pending), workers * 4)
        chunks = [pending[i::chunk_count] for i in range(chunk_count)]
        context = (self.db.registry, self.db.semiring, self.compiler_options)
        # Snapshot the cache generation before fanning out: workers fork
        # with the current registry, and absorb() discards their results
        # if a mutation invalidated distributions while they ran.
        generation = getattr(source, "data_generation", None)
        results, info = parallel_pool.execute(
            distribution_task, context, chunks, workers
        )
        stats.update(info)
        absorb = getattr(source, "absorb", None)
        for chunk, (distributions, _) in zip(chunks, results):
            for key, distribution in zip(chunk, distributions):
                for row in by_key[key]:
                    row._annotation_dist = distribution
                if absorb is not None:
                    if generation is not None:
                        absorb(key, distribution, generation=generation)
                    else:
                        absorb(key, distribution)
        deltas = merge_stat_sums(
            (delta for _, delta in results), ("mutex_nodes",)
        )
        stats["parallel_mutex_nodes"] = deltas["mutex_nodes"]
        return stats

    def deterministic_baseline(self, query: Query) -> tuple[Relation, float]:
        """The paper's Q0: run the query with every tuple certainly present.

        Returns the deterministic answer and the wall-clock time, i.e. the
        cost of query processing without any expression or probability
        machinery.
        """
        world = {}
        for name, table in self.db.tables.items():
            rel = Relation(table.schema, self.db.semiring)
            one = self.db.semiring.one
            for row in table:
                values = tuple(
                    Valuation({}, self.db.semiring)(v)
                    if isinstance(v, ModuleExpr)
                    else v
                    for v in row.values
                )
                rel.add(values, one)
            world[name] = rel
        prepared = self.prepare(query)
        start = time.perf_counter()
        result = execute_deterministic(prepared, world, self.db.semiring)
        elapsed = time.perf_counter() - start
        return result, elapsed
