"""pvc-tables: probabilistic value-conditioned tables (Section 3, Def. 6).

A pvc-table is a relation with an annotation column ``Φ`` holding semiring
expressions over the random variables, in which tuple *values* may be
either constants or semimodule expressions.  A pvc-database is a set of
pvc-tables over the same induced probability space.

pvc-tables are a complete representation system (Theorem 1): any finite
probability distribution over relational databases is representable, and —
unlike pc-tables — results of aggregate queries stay polynomial in size
because annotations and aggregated values can be intertwined in semimodule
expressions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Mapping, Sequence

from repro.algebra.expressions import ONE, SemiringExpr
from repro.algebra.semimodule import ModuleExpr
from repro.algebra.semiring import BOOLEAN, Semiring
from repro.algebra.valuation import Valuation
from repro.db.relation import Relation
from repro.db.schema import Schema
from repro.errors import SchemaError
from repro.prob.variables import VariableRegistry

__all__ = ["PVCRow", "PVCTable", "PVCDatabase"]


@dataclass(frozen=True)
class PVCRow:
    """One tuple of a pvc-table: values plus the annotation ``Φ``."""

    values: tuple
    annotation: SemiringExpr

    def value_dict(self, schema: Schema) -> dict:
        return dict(zip(schema.attributes, self.values))

    def module_values(self, schema: Schema) -> dict:
        """The semimodule-valued (aggregation) entries of this row."""
        return {
            name: value
            for name, value in zip(schema.attributes, self.values)
            if isinstance(value, ModuleExpr)
        }


class PVCTable:
    """A pvc-table: schema, rows, annotations.

    >>> from repro.algebra import Var
    >>> table = PVCTable(Schema(["sid", "shop"]))
    >>> table.add((1, "M&S"), Var("x1"))
    >>> len(table)
    1
    """

    __slots__ = ("schema", "rows")

    def __init__(self, schema: Schema, rows: Iterable[PVCRow] = ()):
        self.schema = schema
        self.rows: list[PVCRow] = list(rows)

    def add(self, values: Sequence, annotation: SemiringExpr = ONE):
        """Append a row; the default annotation ``1_K`` means "certain"."""
        values = tuple(values)
        if len(values) != len(self.schema):
            raise SchemaError(
                f"tuple of arity {len(values)} does not match schema "
                f"{self.schema!r}"
            )
        self.rows.append(PVCRow(values, annotation))

    def __iter__(self) -> Iterator[PVCRow]:
        return iter(self.rows)

    def __len__(self) -> int:
        return len(self.rows)

    @property
    def variables(self) -> frozenset:
        """All variables mentioned by annotations or semimodule values."""
        names: frozenset = frozenset()
        for row in self.rows:
            names |= row.annotation.variables
            for value in row.values:
                if isinstance(value, ModuleExpr):
                    names |= value.variables
        return names

    def instantiate(self, valuation: Valuation, semiring: Semiring) -> Relation:
        """The possible world of this table under ``valuation`` (Def. 6).

        Annotations become multiplicities; semimodule values evaluate to
        monoid values; constants stay as they are.
        """
        world = Relation(self.schema, semiring)
        for row in self.rows:
            multiplicity = valuation(row.annotation)
            if multiplicity == semiring.zero:
                continue
            values = tuple(
                valuation(v) if isinstance(v, ModuleExpr) else v
                for v in row.values
            )
            world.add(values, multiplicity)
        return world

    def pretty(self, max_rows: int = 20) -> str:
        """A plain-text rendering in the style of the paper's figures."""
        header = list(self.schema.attributes) + ["Φ"]
        body = [
            [str(v) for v in row.values] + [repr(row.annotation)]
            for row in self.rows[:max_rows]
        ]
        widths = [
            max(len(header[i]), *(len(line[i]) for line in body), 1)
            if body
            else len(header[i])
            for i in range(len(header))
        ]
        lines = [
            "  ".join(name.ljust(widths[i]) for i, name in enumerate(header))
        ]
        for line in body:
            lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(line)))
        if len(self.rows) > max_rows:
            lines.append(f"... ({len(self.rows) - max_rows} more rows)")
        return "\n".join(lines)

    def __repr__(self):
        return f"PVCTable({self.schema!r}, {len(self.rows)} rows)"


class PVCDatabase:
    """A set of pvc-tables over one induced probability space (Def. 6)."""

    def __init__(
        self,
        tables: Mapping[str, PVCTable] | None = None,
        registry: VariableRegistry | None = None,
        semiring: Semiring = BOOLEAN,
    ):
        self.tables: dict[str, PVCTable] = dict(tables or {})
        self.registry = registry if registry is not None else VariableRegistry()
        self.semiring = semiring

    def __getitem__(self, name: str) -> PVCTable:
        try:
            return self.tables[name]
        except KeyError:
            raise SchemaError(f"no table named {name!r} in the database") from None

    def __contains__(self, name: str) -> bool:
        return name in self.tables

    def add_table(self, name: str, table: PVCTable) -> PVCTable:
        if name in self.tables:
            raise SchemaError(f"table {name!r} already exists")
        self.tables[name] = table
        return table

    def create_table(
        self,
        name: str,
        attributes: Sequence[str],
        aggregation_attributes: Iterable[str] = (),
    ) -> PVCTable:
        """Create and register an empty pvc-table."""
        return self.add_table(
            name, PVCTable(Schema(attributes, aggregation_attributes))
        )

    @property
    def variables(self) -> frozenset:
        names: frozenset = frozenset()
        for table in self.tables.values():
            names |= table.variables
        return names

    def __repr__(self):
        inner = ", ".join(
            f"{name}({len(table)})" for name, table in sorted(self.tables.items())
        )
        return f"PVCDatabase[{self.semiring.name}]({inner})"
