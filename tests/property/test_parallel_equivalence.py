"""Property tests: parallel execution never changes an answer.

Random workloads come from the Eq.-11 generator
(:mod:`repro.workloads.random_expr`): each example builds a small
pvc-database whose row annotations are independently generated
aggregation conditions over a shared Bernoulli variable pool.  Two
properties are checked on every example:

* **Sharded Monte-Carlo determinism** — seeded (ε, δ) interval
  estimation returns *exactly* the same intervals (and the same stopping
  trajectory) for any worker count, because the shard plan and per-shard
  RNG streams are worker-count independent.
* **Parallel exact compilation soundness** — sprout with a worker pool
  matches the brute-force possible-worlds oracle to 1e-9, i.e. the
  compile fan-out is a pure execution strategy.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algebra.semiring import BOOLEAN
from repro.db.pvc_table import PVCDatabase
from repro.engine.montecarlo import MonteCarloEngine
from repro.engine.naive import NaiveEngine
from repro.engine.sprout import SproutEngine
from repro.prob.variables import VariableRegistry
from repro.query.ast import AggSpec, GroupAgg, relation
from repro.workloads.random_expr import ExprParams, generate_condition


@st.composite
def condition_databases(draw):
    """A pvc-database with 2-3 rows annotated by random Eq.-11 conditions.

    The conditions share one variable pool (correlated rows), which is
    exactly the shape that exercises the generic per-world Monte-Carlo
    path and non-trivial d-tree compilation.
    """
    params = ExprParams(
        left_terms=draw(st.integers(min_value=1, max_value=3)),
        right_terms=0,
        variables=draw(st.integers(min_value=2, max_value=4)),
        clauses=draw(st.integers(min_value=1, max_value=2)),
        literals=draw(st.integers(min_value=1, max_value=2)),
        max_value=8,
        constant=draw(st.integers(min_value=0, max_value=10)),
        theta=draw(st.sampled_from(["=", "<=", ">"])),
        agg_left=draw(st.sampled_from(["SUM", "MIN", "MAX", "COUNT"])),
    )
    base_seed = draw(st.integers(min_value=0, max_value=2**20))
    rows = draw(st.integers(min_value=2, max_value=3))
    registry = VariableRegistry()
    annotations = []
    for i in range(rows):
        expr, generated = generate_condition(params, seed=base_seed * 31 + i)
        for name, dist in generated.items():
            registry.declare(name, dist)  # same p=0.5 pool across rows
        annotations.append(expr)
    db = PVCDatabase(registry=registry, semiring=BOOLEAN)
    table = db.create_table("R", ["i"])
    for i, annotation in enumerate(annotations):
        table.add((i,), annotation)
    return db


@settings(max_examples=8, deadline=None)
@given(db=condition_databases(), seed=st.integers(min_value=0, max_value=999))
def test_seeded_parallel_mc_intervals_equal_serial_exactly(db, seed):
    query = relation("R")
    snapshots = {}
    for workers in (1, 3):
        engine = MonteCarloEngine(db, seed=seed)
        intervals, info = engine.estimate_intervals(
            query,
            epsilon=0.15,
            delta=0.1,
            max_samples=512,
            initial_batch=128,
            shard_size=64,
            workers=workers,
        )
        assert info.get("parallel_fallback") is None
        snapshots[workers] = (
            {key: (i.low, i.high) for key, i in intervals.items()},
            info["samples"],
            info["rounds"],
        )
    assert snapshots[1] == snapshots[3]


@settings(max_examples=6, deadline=None)
@given(db=condition_databases())
def test_parallel_sprout_matches_brute_force_oracle(db):
    queries = [
        relation("R"),
        GroupAgg(relation("R"), [], [AggSpec.of("n", "COUNT", None)]),
    ]
    oracle = NaiveEngine(db)
    engine = SproutEngine(db)
    for query in queries:
        expected = oracle.tuple_probabilities(query)
        result = engine.run(query, workers=2)
        assert result.stats.get("parallel_fallback") is None
        actual = result.tuple_probabilities()
        assert set(actual) == set(expected)
        for key, probability in expected.items():
            assert abs(actual[key] - probability) < 1e-9
