"""The convolution equations (4)-(10) of Section 5, as named operations.

:meth:`Distribution.convolve` implements the generic Proposition 1; this
module provides thin, documented wrappers binding it to the six structural
cases used at d-tree nodes:

====================  ==============================================
Equation              Operation
====================  ==============================================
Eq. (4)               semiring sum of independent annotations
Eq. (5)               semiring product of independent annotations
Eq. (6)               monoid sum of independent semimodule values
Eq. (7)               scalar action ``Φ ⊗ α``
Eq. (8) / Eq. (9)     conditional expressions ``[· θ ·]``
Eq. (10)              mutex partitioning (Shannon expansion)
====================  ==============================================

Because each wrapper knows its semiring or monoid statically, it resolves
the matching vectorized kernel (:mod:`repro.prob.kernels`) once per call
instead of re-recognizing the op callable, and falls back to the generic
dict loop for symbolic semirings or non-numeric supports.

The ``*_many`` variants are the n-ary entry points used by d-tree nodes:
they reduce their operands smallest-first (the convolution-tree
optimization), which for SUM/COUNT aggregates avoids re-convolving the
full running support at every step of a left-to-right fold.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.algebra.conditions import ComparisonOp
from repro.algebra.monoid import Monoid
from repro.algebra.semiring import Semiring
from repro.prob import kernels
from repro.prob.distribution import TOLERANCE, Distribution

__all__ = [
    "semiring_add",
    "semiring_mul",
    "monoid_add",
    "semiring_add_many",
    "semiring_mul_many",
    "monoid_add_many",
    "scalar_action",
    "comparison",
    "mutex_mixture",
]


def semiring_add(
    dist_phi: Distribution, dist_psi: Distribution, semiring: Semiring
) -> Distribution:
    """Eq. (4): distribution of ``Φ + Ψ`` for independent ``Φ``, ``Ψ``."""
    return dist_phi.convolve_with_spec(
        dist_psi, semiring.add, kernels.semiring_add_op(semiring)
    )


def semiring_mul(
    dist_phi: Distribution, dist_psi: Distribution, semiring: Semiring
) -> Distribution:
    """Eq. (5): distribution of ``Φ · Ψ`` for independent ``Φ``, ``Ψ``."""
    return dist_phi.convolve_with_spec(
        dist_psi, semiring.mul, kernels.semiring_mul_op(semiring)
    )


def monoid_add(
    dist_alpha: Distribution, dist_beta: Distribution, monoid: Monoid
) -> Distribution:
    """Eq. (6): distribution of ``α +_M β`` for independent ``α``, ``β``."""
    return dist_alpha.convolve_with_spec(
        dist_beta, monoid.add, kernels.monoid_op(monoid)
    )


def semiring_add_many(
    dists: Sequence[Distribution], semiring: Semiring
) -> Distribution:
    """n-ary Eq. (4), reduced smallest-supports-first."""
    spec = kernels.semiring_add_op(semiring)
    op = semiring.add
    return kernels.convolve_many(
        dists, lambda a, b: a.convolve_with_spec(b, op, spec)
    )


def semiring_mul_many(
    dists: Sequence[Distribution], semiring: Semiring
) -> Distribution:
    """n-ary Eq. (5), reduced smallest-supports-first."""
    spec = kernels.semiring_mul_op(semiring)
    op = semiring.mul
    return kernels.convolve_many(
        dists, lambda a, b: a.convolve_with_spec(b, op, spec)
    )


def monoid_add_many(
    dists: Sequence[Distribution], monoid: Monoid
) -> Distribution:
    """n-ary Eq. (6), reduced smallest-supports-first.

    This is the classic convolution-tree order for SUM/COUNT aggregates:
    convolving the two smallest operand distributions first keeps every
    intermediate support as small as possible.
    """
    spec = kernels.monoid_op(monoid)
    op = monoid.add
    return kernels.convolve_many(
        dists, lambda a, b: a.convolve_with_spec(b, op, spec)
    )


def scalar_action(
    dist_phi: Distribution,
    dist_alpha: Distribution,
    monoid: Monoid,
    semiring: Semiring,
) -> Distribution:
    """Eq. (7): distribution of ``Φ ⊗ α`` for independent ``Φ``, ``α``.

    For the Boolean semiring the scalar side has at most two values, so
    the result is the closed-form mixture
    ``P[Φ=⊤] · clamp(α) + P[Φ=⊥] · δ(0_M)`` — no support-pair loop at all.
    """
    if semiring.is_boolean:
        p_true = sum(p for s, p in dist_phi.items() if bool(s))
        p_false = sum(p for s, p in dist_phi.items() if not bool(s))
        accum: dict = {}
        if p_true > TOLERANCE:
            for value, p in dist_alpha.items():
                image = monoid.clamp(value)
                accum[image] = accum.get(image, 0.0) + p_true * p
        if p_false > TOLERANCE:
            # Each (⊥, m) support pair contributes p_false·p_m to 0_M, so
            # sub-normalized α scales the false branch too (as in the
            # generic convolution).
            zero = monoid.zero
            accum[zero] = accum.get(zero, 0.0) + p_false * dist_alpha.total()
        return Distribution(accum)
    return dist_phi.convolve(
        dist_alpha, lambda s, m: monoid.act(s, m, semiring)
    )


def comparison(
    dist_left: Distribution,
    dist_right: Distribution,
    op: ComparisonOp,
    semiring: Semiring,
) -> Distribution:
    """Eqs. (8)/(9): distribution of ``[left θ right]``.

    The result is a distribution over ``{0_S, 1_S}`` regardless of whether
    the operands are semiring or semimodule valued.
    """
    mass = kernels.comparison_mass(
        dist_left._probs, dist_right._probs, op.symbol
    )
    if mass is not None:
        accum = {}
        if mass > TOLERANCE:
            accum[semiring.one] = mass
        remainder = dist_left.total() * dist_right.total() - mass
        if remainder > TOLERANCE:
            accum[semiring.zero] = remainder
        if accum:
            return Distribution._from_clean(accum)
    return dist_left.convolve(
        dist_right, lambda a, b: semiring.from_condition(op(a, b))
    )


def mutex_mixture(
    branches: Iterable[tuple[float, Distribution]]
) -> Distribution:
    """Eq. (10): ``P_Φ[s] = Σ_{s'} P_x[s'] · P_{Φ|x←s'}[s]``.

    ``branches`` pairs the probability ``P_x[s']`` of each eliminated
    value with the distribution of the corresponding restriction.
    """
    return Distribution.mixture(branches)
