"""pvc-tables: probabilistic value-conditioned tables (Section 3, Def. 6).

A pvc-table is a relation with an annotation column ``Φ`` holding semiring
expressions over the random variables, in which tuple *values* may be
either constants or semimodule expressions.  A pvc-database is a set of
pvc-tables over the same induced probability space.

pvc-tables are a complete representation system (Theorem 1): any finite
probability distribution over relational databases is representable, and —
unlike pc-tables — results of aggregate queries stay polynomial in size
because annotations and aggregated values can be intertwined in semimodule
expressions.
"""

from __future__ import annotations

import operator
from dataclasses import dataclass
from typing import Iterable, Iterator, Mapping, Sequence

from repro.algebra.conditions import compare
from repro.algebra.expressions import ONE, SemiringExpr, Var, ssum
from repro.algebra.semimodule import ModuleExpr
from repro.algebra.semiring import BOOLEAN, Semiring
from repro.algebra.valuation import Valuation
from repro.db.relation import Relation
from repro.db.schema import Schema
from repro.errors import DistributionError, SchemaError
from repro.prob.distribution import Distribution
from repro.prob.variables import VariableRegistry

__all__ = ["PVCRow", "PVCTable", "PVCDatabase", "merge_annotated_rows", "tuple_getter"]


def tuple_getter(indices):
    """``values -> tuple(values[i] for i in indices)`` without a genexpr.

    ``operator.itemgetter`` builds the tuple in C; the empty and
    single-index cases (where itemgetter is unusable or returns a scalar)
    are wrapped to stay tuples.  Shared by the physical executor's
    project/join/group key paths and the table hash indexes.
    """
    if not indices:
        return lambda values: ()  # π_∅ and $_∅ keys
    if len(indices) == 1:
        index = indices[0]
        return lambda values: (values[index],)
    return operator.itemgetter(*indices)


def merge_annotated_rows(rows) -> list:
    """Group identical value tuples, summing their annotations in ``K``.

    ``rows`` is an iterable of ``(values, annotation)`` pairs; the result
    is the merged set-of-tuples view (Definition 6) with zero-annotated
    rows dropped, preserving first-occurrence order.  The single merge
    implementation behind base-table scans and the executor's π/∪.
    """
    merged: dict[tuple, SemiringExpr] = {}
    duplicates: dict[tuple, list] = {}
    for values, annotation in rows:
        if annotation.is_zero():
            continue
        if values not in merged:
            merged[values] = annotation
        else:
            bucket = duplicates.get(values)
            if bucket is None:
                duplicates[values] = bucket = [merged[values]]
            bucket.append(annotation)
    if duplicates:
        for values, annotations in duplicates.items():
            merged[values] = ssum(annotations)
    return list(merged.items())


@dataclass(frozen=True)
class PVCRow:
    """One tuple of a pvc-table: values plus the annotation ``Φ``."""

    values: tuple
    annotation: SemiringExpr

    def value_dict(self, schema: Schema) -> dict:
        return dict(zip(schema.attributes, self.values))

    def module_values(self, schema: Schema) -> dict:
        """The semimodule-valued (aggregation) entries of this row."""
        return {
            name: value
            for name, value in zip(schema.attributes, self.values)
            if isinstance(value, ModuleExpr)
        }


class PVCTable:
    """A pvc-table: schema, rows, annotations.

    >>> from repro.algebra import Var
    >>> table = PVCTable(Schema(["sid", "shop"]))
    >>> table.add((1, "M&S"), Var("x1"))
    >>> len(table)
    1
    """

    __slots__ = ("schema", "rows", "_scan_cache", "_index_cache", "_column_cache")

    def __init__(self, schema: Schema, rows: Iterable[PVCRow] = ()):
        self.schema = schema
        self.rows: list[PVCRow] = list(rows)
        #: Caches for the physical executor, invalidated by row count:
        #: the merged set-of-tuples scan, per-key-set hash indexes, and
        #: the columnar (per-column + annotation) views.
        #: Mutate rows through :meth:`add`/:meth:`add_block` (append-only,
        #: so the count always changes); code that replaces entries of the
        #: ``rows`` list in place must call :meth:`invalidate_caches`.
        self._scan_cache = None
        self._index_cache: dict = {}
        self._column_cache: dict = {}

    def invalidate_caches(self) -> None:
        """Drop the cached scan/hash-index/column views after in-place edits."""
        self._scan_cache = None
        self._index_cache.clear()
        self._column_cache.clear()

    def add(self, values: Sequence, annotation: SemiringExpr = ONE):
        """Append a row; the default annotation ``1_K`` means "certain"."""
        values = tuple(values)
        if len(values) != len(self.schema):
            raise SchemaError(
                f"tuple of arity {len(values)} does not match schema "
                f"{self.schema!r}"
            )
        self.rows.append(PVCRow(values, annotation))

    def add_block(
        self,
        alternatives: Sequence[tuple],
        registry: VariableRegistry,
        name: str,
    ) -> None:
        """Append mutually exclusive row alternatives driven by variable
        ``name`` (the BID encoding shared by :func:`bid_table` and
        :meth:`PVCDatabase.insert_block`).

        ``alternatives`` is a sequence of ``(values, probability)`` pairs
        summing to at most 1; the remainder is the probability that no
        alternative is chosen.  Alternative ``i`` gets the conditional
        annotation ``[name = i+1]`` over one integer block variable.
        """
        alternatives = list(alternatives)
        total = sum(probability for _, probability in alternatives)
        if total > 1.0 + 1e-9:
            raise DistributionError(
                f"block {name!r} probabilities sum to {total} > 1"
            )
        support = {
            i + 1: probability
            for i, (_, probability) in enumerate(alternatives)
            if probability > 0
        }
        remainder = 1.0 - total
        if remainder > 1e-12:
            support[0] = remainder
        registry.declare(name, Distribution(support))
        for i, (values, probability) in enumerate(alternatives):
            if probability <= 0:
                continue
            self.add(tuple(values), compare(Var(name), "=", i + 1))

    def scan_rows(self) -> list:
        """The merged set-of-tuples view as ``(values, annotation)`` pairs.

        A pvc-table represents a *set* of tuples (Definition 6): rows
        stored with identical values are alternatives for one tuple and
        merge by annotation summation; zero-annotated rows are dropped.
        The result is cached (keyed on the row count, which every mutator
        changes) and shared — callers must not mutate it.
        """
        cached = self._scan_cache
        if cached is not None and cached[0] == len(self.rows):
            return cached[1]
        scan = merge_annotated_rows(
            (row.values, row.annotation) for row in self.rows
        )
        self._scan_cache = (len(self.rows), scan)
        self._index_cache.clear()
        return scan

    def hash_index(self, key_indices: tuple) -> dict:
        """Buckets of :meth:`scan_rows` keyed on the given value positions.

        Built once per key set and cached alongside the scan; the physical
        executor uses it so repeated hash joins against a base table never
        rebuild the table's hash index.
        """
        cached = self._index_cache.get(key_indices)
        if cached is not None and cached[0] == len(self.rows):
            return cached[1]
        key_of = tuple_getter(key_indices)
        buckets: dict[tuple, list] = {}
        for row in self.scan_rows():
            key = key_of(row[0])
            bucket = buckets.get(key)
            if bucket is None:
                buckets[key] = bucket = []
            bucket.append(row)
        self._index_cache[key_indices] = (len(self.rows), buckets)
        return buckets

    def value_columns(self) -> list:
        """Columnar view of the raw rows: one list per attribute, aligned
        with ``rows`` order (semimodule values appear unevaluated).

        Memoised like the scan/hash-index caches (keyed on the row
        count), so repeated plan bindings — the codegen per-world layout
        in particular — never re-split rows into columns.
        """
        cached = self._column_cache.get("values")
        if cached is not None and cached[0] == len(self.rows):
            return cached[1]
        columns = [
            [row.values[i] for row in self.rows]
            for i in range(len(self.schema))
        ]
        self._column_cache["values"] = (len(self.rows), columns)
        return columns

    def annotation_column(self) -> list:
        """The annotation column ``Φ`` of the raw rows, memoised like
        :meth:`value_columns`."""
        cached = self._column_cache.get("annotations")
        if cached is not None and cached[0] == len(self.rows):
            return cached[1]
        column = [row.annotation for row in self.rows]
        self._column_cache["annotations"] = (len(self.rows), column)
        return column

    def __iter__(self) -> Iterator[PVCRow]:
        return iter(self.rows)

    def __len__(self) -> int:
        return len(self.rows)

    @property
    def variables(self) -> frozenset:
        """All variables mentioned by annotations or semimodule values."""
        names: frozenset = frozenset()
        for row in self.rows:
            names |= row.annotation.variables
            for value in row.values:
                if isinstance(value, ModuleExpr):
                    names |= value.variables
        return names

    def instantiate(self, valuation: Valuation, semiring: Semiring) -> Relation:
        """The possible world of this table under ``valuation`` (Def. 6).

        Annotations become multiplicities; semimodule values evaluate to
        monoid values; constants stay as they are.
        """
        world = Relation(self.schema, semiring)
        for row in self.rows:
            multiplicity = valuation(row.annotation)
            if multiplicity == semiring.zero:
                continue
            values = tuple(
                valuation(v) if isinstance(v, ModuleExpr) else v
                for v in row.values
            )
            world.add(values, multiplicity)
        return world

    def pretty(self, max_rows: int = 20) -> str:
        """A plain-text rendering in the style of the paper's figures."""
        header = list(self.schema.attributes) + ["Φ"]
        body = [
            [str(v) for v in row.values] + [repr(row.annotation)]
            for row in self.rows[:max_rows]
        ]
        widths = [
            max(len(header[i]), *(len(line[i]) for line in body), 1)
            if body
            else len(header[i])
            for i in range(len(header))
        ]
        lines = [
            "  ".join(name.ljust(widths[i]) for i, name in enumerate(header))
        ]
        for line in body:
            lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(line)))
        if len(self.rows) > max_rows:
            lines.append(f"... ({len(self.rows) - max_rows} more rows)")
        return "\n".join(lines)

    def __repr__(self):
        return f"PVCTable({self.schema!r}, {len(self.rows)} rows)"


class PVCDatabase:
    """A set of pvc-tables over one induced probability space (Def. 6)."""

    def __init__(
        self,
        tables: Mapping[str, PVCTable] | None = None,
        registry: VariableRegistry | None = None,
        semiring: Semiring = BOOLEAN,
    ):
        self.tables: dict[str, PVCTable] = dict(tables or {})
        self.registry = registry if registry is not None else VariableRegistry()
        self.semiring = semiring
        self._variable_counters: dict[str, int] = {}

    def __getitem__(self, name: str) -> PVCTable:
        try:
            return self.tables[name]
        except KeyError:
            raise SchemaError(f"no table named {name!r} in the database") from None

    def __contains__(self, name: str) -> bool:
        return name in self.tables

    def add_table(self, name: str, table: PVCTable) -> PVCTable:
        if name in self.tables:
            raise SchemaError(f"table {name!r} already exists")
        self.tables[name] = table
        return table

    def create_table(
        self,
        name: str,
        attributes: Sequence[str],
        aggregation_attributes: Iterable[str] = (),
    ) -> PVCTable:
        """Create and register an empty pvc-table."""
        return self.add_table(
            name, PVCTable(Schema(attributes, aggregation_attributes))
        )

    def catalog(self) -> dict[str, Schema]:
        """Mapping of table names to schemas (for validation/planning)."""
        return {name: table.schema for name, table in self.tables.items()}

    def cardinalities(self) -> dict[str, int]:
        """Row counts per table — the planner's base-table statistics."""
        return {name: len(table) for name, table in self.tables.items()}

    def _coerce_values(self, table: PVCTable, values) -> tuple:
        """Accept positional tuples or attribute dictionaries."""
        if isinstance(values, Mapping):
            missing = set(table.schema.attributes) - set(values)
            extra = set(values) - set(table.schema.attributes)
            if missing or extra:
                raise SchemaError(
                    f"row keys {sorted(values)} do not match schema "
                    f"{table.schema!r}"
                )
            return tuple(values[name] for name in table.schema.attributes)
        return tuple(values)

    def fresh_variable(self, stem: str) -> str:
        """Mint a variable name ``{stem}{i}`` unused by the registry."""
        index = self._variable_counters.get(stem, 0)
        while f"{stem}{index}" in self.registry:
            index += 1
        self._variable_counters[stem] = index + 1
        return f"{stem}{index}"

    def insert(
        self,
        table_name: str,
        values,
        p: float | None = None,
        annotation: SemiringExpr | None = None,
        var: str | None = None,
    ) -> SemiringExpr:
        """Insert one row, auto-minting a Bernoulli variable for ``p``.

        * ``p=None`` (default) inserts a certain row (annotation ``1_K``);
        * ``0 <= p < 1`` declares a fresh Boolean variable with
          ``P[⊤] = p`` (named ``var`` if given, else ``{table}_{i}``) and
          annotates the row with it; ``p = 1`` is treated as certain —
          unless ``var`` is given, which forces the named variable to be
          declared (with ``P[⊤] = 1``) so later rows can reference it;
        * an explicit ``annotation`` bypasses variable minting entirely.

        Returns the row's annotation, so callers can correlate further
        rows with the same event.
        """
        table = self[table_name]
        values = self._coerce_values(table, values)
        if annotation is not None:
            if p is not None or var is not None:
                raise DistributionError(
                    "an explicit annotation cannot be combined with p= or var="
                )
            table.add(values, annotation)
            return annotation
        if p is None:
            if var is not None:
                raise DistributionError(
                    f"naming variable {var!r} requires a probability p"
                )
            table.add(values)
            return ONE
        if not 0.0 <= p <= 1.0:
            raise DistributionError(f"probability {p} is not in [0, 1]")
        if p >= 1.0 and var is None:
            table.add(values)  # certain row: no variable to mint
            return ONE
        name = var if var is not None else self.fresh_variable(f"{table_name}_")
        self.registry.bernoulli(name, p)
        expr = Var(name)
        table.add(values, expr)
        return expr

    def insert_block(
        self,
        table_name: str,
        alternatives: Sequence[tuple],
        var: str | None = None,
    ) -> str:
        """Insert a block of mutually exclusive row alternatives (BID).

        ``alternatives`` is a sequence of ``(values, probability)`` pairs
        whose probabilities sum to at most 1 (the remainder is "no row").
        One integer block variable drives the block, and alternative ``i``
        is annotated ``[x_b = i]`` — which requires the **naturals**
        semiring, as with :func:`repro.db.tuple_independent.bid_table`.

        Returns the name of the block variable.
        """
        table = self[table_name]
        alternatives = [
            (self._coerce_values(table, values), probability)
            for values, probability in alternatives
        ]
        name = var if var is not None else self.fresh_variable(f"{table_name}_blk")
        table.add_block(alternatives, self.registry, name)
        return name

    @property
    def variables(self) -> frozenset:
        names: frozenset = frozenset()
        for table in self.tables.values():
            names |= table.variables
        return names

    def __repr__(self):
        inner = ", ".join(
            f"{name}({len(table)})" for name, table in sorted(self.tables.items())
        )
        return f"PVCDatabase[{self.semiring.name}]({inner})"
