"""Unit tests for the concrete semirings (Definition 3, Table 1)."""

import math

import pytest

from repro.algebra.monoid import MIN, PROD, SUM
from repro.algebra.semiring import BOOLEAN, NATURALS
from repro.errors import AlgebraError


class TestBooleanSemiring:
    def test_add_is_or(self):
        assert BOOLEAN.add(True, False) is True
        assert BOOLEAN.add(False, False) is False

    def test_mul_is_and(self):
        assert BOOLEAN.mul(True, True) is True
        assert BOOLEAN.mul(True, False) is False

    def test_neutral_elements(self):
        assert BOOLEAN.zero is False
        assert BOOLEAN.one is True

    def test_coerce_ints(self):
        assert BOOLEAN.coerce(0) is False
        assert BOOLEAN.coerce(1) is True

    def test_coerce_bools(self):
        assert BOOLEAN.coerce(True) is True

    def test_coerce_rejects_other_ints(self):
        with pytest.raises(AlgebraError):
            BOOLEAN.coerce(2)

    def test_from_condition(self):
        assert BOOLEAN.from_condition(True) is True
        assert BOOLEAN.from_condition(False) is False

    def test_action_set_semantics(self):
        assert BOOLEAN.action(True, 10, SUM) == 10
        assert BOOLEAN.action(False, 10, MIN) == math.inf


class TestNaturalsSemiring:
    def test_arithmetic(self):
        assert NATURALS.add(2, 3) == 5
        assert NATURALS.mul(2, 3) == 6

    def test_neutral_elements(self):
        assert NATURALS.zero == 0
        assert NATURALS.one == 1

    def test_coerce(self):
        assert NATURALS.coerce(True) == 1
        assert NATURALS.coerce(7) == 7

    def test_coerce_rejects_negative(self):
        with pytest.raises(AlgebraError):
            NATURALS.coerce(-1)

    def test_action_bag_semantics(self):
        # multiplicity 3 of a tuple with value 10 contributes 30 to SUM
        assert NATURALS.action(3, 10, SUM) == 30
        assert NATURALS.action(3, 2, PROD) == 8
        assert NATURALS.action(0, 5, MIN) == math.inf


class TestSemiringLaws:
    """Spot-check the Definition-3 axioms on concrete values."""

    @pytest.mark.parametrize("semiring", [BOOLEAN, NATURALS])
    def test_zero_annihilates(self, semiring):
        for value in (semiring.zero, semiring.one):
            assert semiring.mul(semiring.zero, value) == semiring.zero

    @pytest.mark.parametrize("semiring", [BOOLEAN, NATURALS])
    def test_one_is_multiplicative_identity(self, semiring):
        for value in (semiring.zero, semiring.one):
            assert semiring.mul(semiring.one, value) == value

    def test_distributivity_naturals(self):
        a, b, c = 2, 3, 4
        assert NATURALS.mul(a, NATURALS.add(b, c)) == NATURALS.add(
            NATURALS.mul(a, b), NATURALS.mul(a, c)
        )

    def test_distributivity_boolean(self):
        for a in (False, True):
            for b in (False, True):
                for c in (False, True):
                    left = BOOLEAN.mul(a, BOOLEAN.add(b, c))
                    right = BOOLEAN.add(BOOLEAN.mul(a, b), BOOLEAN.mul(a, c))
                    assert left == right

    def test_equality_and_hash(self):
        assert BOOLEAN != NATURALS
        assert len({BOOLEAN, NATURALS}) == 2
