"""Mutation bookkeeping for live pvc-databases: deltas and lineage.

The paper's pipeline treats the pvc-database as frozen; every cache in
the stack — merged scans, hash indexes, prepared plans, compiled d-tree
distributions, fused kernels — was originally keyed against data that
could never change.  This module is the bookkeeping layer that makes the
database *mutable* without flushing those caches wholesale:

* :class:`Delta` — one immutable record of a mutation: which table, what
  kind of change, how many rows, which random variables the touched rows
  mention, and which variables had their *distribution* changed (the only
  event that invalidates compiled d-trees — annotations are lineage, and
  a distribution is a pure function of its variables' distributions);
* :class:`DeltaLog` — a bounded in-memory log of recent deltas, mostly a
  diagnostic surface (``db.deltas``) for tests, benchmarks and the
  server's ``/stats`` endpoint;
* :class:`LineageIndex` — the variable → dependent-cache-keys map the
  :class:`~repro.engine.base.CompilationCache` maintains, so a
  probability update invalidates exactly the distributions whose lineage
  mentions the reassigned variables and nothing else.

Invalidation granularity, by cache:

==================  =====================================================
cache               invalidated by
==================  =====================================================
table scan/index    the owning table's epoch (any row change); touched
                    hash-index buckets are *patched*, the rest survive
compiled d-trees    ``changed_variables`` lineage only (value edits,
                    inserts and deletes never recompile existing entries)
prepared plans      cardinality fingerprint (shape changes only)
fused kernels       plan identity (data-independent; never invalidated)
==================  =====================================================
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Iterable, Iterator

__all__ = ["Delta", "DeltaLog", "LineageIndex"]


@dataclass(frozen=True)
class Delta:
    """One applied mutation, as seen by cache-invalidation listeners."""

    #: Name of the mutated table.
    table: str
    #: ``"insert"`` | ``"update"`` | ``"delete"``.
    kind: str
    #: Number of base rows touched (inserted, rewritten, or removed).
    rows: int
    #: Variables mentioned by the annotations of the touched rows (their
    #: distributions are unchanged unless also in ``changed_variables``).
    variables: frozenset = frozenset()
    #: Variables whose *distribution* was reassigned by this mutation —
    #: the lineage that invalidates compiled d-tree distributions.
    changed_variables: frozenset = frozenset()
    #: Whether the table's row count changed (plans re-key on
    #: cardinalities; equal-size updates keep their prepared plans).
    cardinality_changed: bool = False
    #: The mutated table's epoch after the mutation.
    epoch: int = 0
    #: The database generation after the mutation.
    generation: int = 0
    #: Cache-patch diagnostics (e.g. ``buckets_patched``), for the
    #: benchmark and ``/stats``; never part of answer fingerprints.
    info: dict = field(default_factory=dict, compare=False)


class DeltaLog:
    """A bounded log of recent :class:`Delta` records.

    Purely observational: invalidation is driven by the database's
    listener fan-out at mutation time, not by replaying the log.  The
    bound keeps bulk loads from accumulating unbounded history.
    """

    def __init__(self, max_entries: int = 256):
        self._entries: deque[Delta] = deque(maxlen=max_entries)
        self.total = 0

    def append(self, delta: Delta) -> None:
        self._entries.append(delta)
        self.total += 1

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[Delta]:
        return iter(self._entries)

    def last(self) -> Delta | None:
        return self._entries[-1] if self._entries else None

    def stats(self) -> dict:
        """Counters by mutation kind over the retained window."""
        kinds: dict[str, int] = {}
        for delta in self._entries:
            kinds[delta.kind] = kinds.get(delta.kind, 0) + 1
        return {"total": self.total, "retained": len(self._entries), **kinds}

    def __repr__(self):
        return f"DeltaLog({len(self._entries)} retained, {self.total} total)"


class LineageIndex:
    """Bidirectional map between variables and dependent cache keys.

    ``record(key, variables)`` registers that the cached object under
    ``key`` was derived from the distributions of ``variables``;
    ``pop(variables)`` returns (and unregisters) every key any of those
    variables flows into.  Keys must be hashable; the index holds both
    directions so eviction (``discard``) stays O(lineage of the key).
    """

    def __init__(self):
        self._by_variable: dict[str, set] = {}
        self._by_key: dict = {}

    def record(self, key, variables: Iterable[str]) -> None:
        names = frozenset(variables)
        if not names:
            return
        previous = self._by_key.get(key)
        if previous == names:
            return
        if previous:
            self.discard(key)
        self._by_key[key] = names
        for name in names:
            self._by_variable.setdefault(name, set()).add(key)

    def discard(self, key) -> None:
        """Unregister one key (cache eviction)."""
        names = self._by_key.pop(key, None)
        if not names:
            return
        for name in names:
            dependents = self._by_variable.get(name)
            if dependents is not None:
                dependents.discard(key)
                if not dependents:
                    del self._by_variable[name]

    def pop(self, variables: Iterable[str]) -> set:
        """All keys depending on any of ``variables``, unregistered."""
        doomed: set = set()
        for name in variables:
            doomed |= self._by_variable.get(name, set())
        for key in doomed:
            self.discard(key)
        return doomed

    def dependents(self, name: str) -> frozenset:
        return frozenset(self._by_variable.get(name, ()))

    def __len__(self) -> int:
        return len(self._by_key)

    def __repr__(self):
        return (
            f"LineageIndex({len(self._by_key)} keys, "
            f"{len(self._by_variable)} variables)"
        )
