"""Discovery of the shared-state registry declarations.

Runtime modules declare their lock discipline next to the state itself
with a plain class (or module) attribute, e.g.::

    class CompilationCache:
        _shared_state_ = {
            "_lock": ("hits", "misses", "evictions", "_distributions"),
        }

meaning: the listed attributes may only be *mutated* while holding
``self._lock`` (for a module-level declaration, the module global of
that name).  The declaration is a frozen dict of string literals, so the
race checker consumes it **statically** — no runtime import of the
declared module ever happens — and the declaration doubles as living
documentation beside the fields it governs.

Two conventions complete the discipline:

* methods whose name ends in ``_locked`` (or is ``__init__`` /
  ``__new__`` / ``__post_init__``) are exempt from the unguarded-write
  rule — ``_locked`` asserts "my caller holds the lock", and the
  checker separately verifies that every call of a ``*_locked`` helper
  happens with a declared lock held;
* an ``async`` function must never ``await`` while holding a declared
  lock — declared locks are *threading* locks, and awaiting under one
  blocks the event loop (the asyncio per-tenant locks are not declared
  here and are exempt by construction).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

from repro.analysis.source import SourceModule

__all__ = ["SharedStateDecl", "collect_declarations"]

DECLARATION_NAME = "_shared_state_"

#: Methods that may touch guarded fields before the object is shared.
EXEMPT_METHODS = frozenset({"__init__", "__new__", "__post_init__"})

LOCKED_SUFFIX = "_locked"


@dataclass
class SharedStateDecl:
    """One class's (or module's) declared lock discipline."""

    module_path: str
    #: Class name, or None for a module-level declaration.
    owner: str | None
    line: int
    #: field name -> owning lock name.
    guards: dict[str, str] = field(default_factory=dict)

    @property
    def locks(self) -> set[str]:
        return set(self.guards.values())

    def lock_of(self, name: str) -> str | None:
        return self.guards.get(name)


def _literal_str(node: ast.AST) -> str | None:
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    return None


def _parse_declaration(
    module: SourceModule, owner: str | None, node: ast.Assign | ast.AnnAssign
) -> SharedStateDecl | None:
    value = node.value
    if not isinstance(value, ast.Dict):
        return None
    decl = SharedStateDecl(module.path, owner, node.lineno)
    for key_node, fields_node in zip(value.keys, value.values):
        lock = _literal_str(key_node) if key_node is not None else None
        if lock is None:
            return None
        if not isinstance(fields_node, (ast.Tuple, ast.List, ast.Set)):
            return None
        for element in fields_node.elts:
            name = _literal_str(element)
            if name is None:
                return None
            decl.guards[name] = lock
    return decl


def _assign_targets(node: ast.stmt):
    if isinstance(node, ast.Assign):
        for target in node.targets:
            if isinstance(target, ast.Name):
                yield target.id, node
    elif isinstance(node, ast.AnnAssign) and isinstance(node.target, ast.Name):
        if node.value is not None:
            yield node.target.id, node


def collect_declarations(module: SourceModule) -> list[SharedStateDecl]:
    """Every ``_shared_state_`` declaration in ``module``."""
    declarations: list[SharedStateDecl] = []
    for statement in module.tree.body:
        for name, node in _assign_targets(statement):
            if name == DECLARATION_NAME:
                decl = _parse_declaration(module, None, node)
                if decl is not None:
                    declarations.append(decl)
        if isinstance(statement, ast.ClassDef):
            for inner in statement.body:
                for name, node in _assign_targets(inner):
                    if name == DECLARATION_NAME:
                        decl = _parse_declaration(module, statement.name, node)
                        if decl is not None:
                            declarations.append(decl)
    return declarations
