"""The compatibility shims still work — and say where to go instead."""

import pytest

from repro.algebra.expressions import Var
from repro.algebra.semiring import BOOLEAN
from repro.db.pvc_table import PVCDatabase
from repro.prob.variables import VariableRegistry
from repro.query.ast import relation
from repro.query.executor import evaluate


def tiny_db():
    reg = VariableRegistry()
    db = PVCDatabase(registry=reg, semiring=BOOLEAN)
    table = db.create_table("R", ["a"])
    reg.bernoulli("x", 0.5)
    table.add((1,), Var("x"))
    return db


class TestRewriteShim:
    def test_evaluate_query_warns_and_delegates(self):
        from repro.query.rewrite import evaluate_query

        db = tiny_db()
        with pytest.warns(DeprecationWarning, match="repro.query.optimizer"):
            shimmed = evaluate_query(relation("R"), db)
        direct = evaluate(relation("R"), db, optimize=False)
        assert [row.values for row in shimmed] == [row.values for row in direct]
        assert [row.annotation for row in shimmed] == [
            row.annotation for row in direct
        ]


class TestPlanShim:
    def test_attribute_access_warns(self):
        from repro.query import optimizer, plan

        with pytest.warns(DeprecationWarning, match="repro.query.optimizer"):
            shimmed = plan.optimize
        assert shimmed is optimizer.optimize

    def test_every_reexport_resolves(self):
        from repro.query import optimizer, plan

        for name in plan.__all__:
            with pytest.warns(DeprecationWarning):
                assert getattr(plan, name) is getattr(optimizer, name)

    def test_unknown_attribute_still_raises(self):
        from repro.query import plan

        with pytest.raises(AttributeError):
            plan.does_not_exist
