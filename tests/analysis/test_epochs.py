"""Fixture corpus for the cache-epoch checker.

The rule gets the four-way treatment: a seeded violation is flagged,
the corrected version passes, an inline suppression silences it, and a
baseline entry grandfathers it.  The final tests re-introduce the
PR-10 staleness bug (an equal-size in-place update that leaves the
row-count unchanged, so count-keyed caches never notice) and prove the
shipped mutable-table classes satisfy the discipline.
"""

from __future__ import annotations

import json

import pytest

from repro.analysis.checkers.epochs import CacheEpochChecker

CHECKERS = [CacheEpochChecker()]


def rule_ids(result):
    return [finding.rule_id for finding in result.findings]


CACHE_CLASS_HEADER = """\
    class Table:
        def __init__(self, rows):
            self.rows = list(rows)
            self._version = 0
            self._scan_cache = None
"""


class TestCacheEpochRule:
    def test_flags_append_without_bump(self, analyze):
        result = analyze(
            CACHE_CLASS_HEADER
            + """
        def add(self, row):
            self.rows.append(row)
    """,
            CHECKERS,
        )
        assert rule_ids(result) == ["cache-epoch"]
        assert "_scan_cache" in result.findings[0].message

    def test_passes_append_with_bump(self, analyze):
        result = analyze(
            CACHE_CLASS_HEADER
            + """
        def add(self, row):
            self.rows.append(row)
            self._version += 1
    """,
            CHECKERS,
        )
        assert result.clean

    def test_flags_equal_size_rebind_without_bump(self, analyze):
        # The PR-10 staleness shape: rewriting rows in place keeps
        # len(self.rows) identical, so a row-count cache guard never
        # fires — only an epoch bump invalidates the memoised views.
        result = analyze(
            CACHE_CLASS_HEADER
            + """
        def update_rows(self, rewrite):
            self.rows = [rewrite(row) for row in self.rows]
    """,
            CHECKERS,
        )
        assert rule_ids(result) == ["cache-epoch"]

    def test_passes_rebind_with_invalidate_call(self, analyze):
        result = analyze(
            CACHE_CLASS_HEADER
            + """
        def invalidate_caches(self):
            self._version += 1
            self._scan_cache = None

        def update_rows(self, rewrite):
            self.rows = [rewrite(row) for row in self.rows]
            self.invalidate_caches()
    """,
            CHECKERS,
        )
        assert result.clean

    def test_flags_subscript_store_and_clear(self, analyze):
        result = analyze(
            CACHE_CLASS_HEADER
            + """
        def patch(self, i, row):
            self.rows[i] = row

        def wipe(self):
            self.rows.clear()
    """,
            CHECKERS,
        )
        assert rule_ids(result) == ["cache-epoch", "cache-epoch"]

    def test_tuples_storage_is_covered(self, analyze):
        result = analyze(
            """
    class Relation:
        def __init__(self):
            self._tuples = {}
            self._version = 0
            self._index_cache = {}

        def add(self, values, mult):
            self._tuples[values] = mult
    """,
            CHECKERS,
        )
        assert rule_ids(result) == ["cache-epoch"]

    def test_cacheless_class_is_ignored(self, analyze):
        # A plain row container owes nobody an epoch.
        result = analyze(
            """
    class Bag:
        def __init__(self):
            self.rows = []

        def add(self, row):
            self.rows.append(row)
    """,
            CHECKERS,
        )
        assert result.clean

    def test_init_family_is_exempt(self, analyze):
        result = analyze(CACHE_CLASS_HEADER, CHECKERS)
        assert result.clean

    def test_locked_helper_is_exempt(self, analyze):
        result = analyze(
            CACHE_CLASS_HEADER
            + """
        def _add_locked(self, row):
            self.rows.append(row)
    """,
            CHECKERS,
        )
        assert result.clean

    def test_suppression_silences_and_is_marked_used(self, analyze):
        result = analyze(
            CACHE_CLASS_HEADER
            + """
        def add(self, row):
            self.rows.append(row)  # repro: allow(cache-epoch)
    """,
            CHECKERS,
        )
        assert result.clean
        assert [f.rule_id for f in result.suppressed] == ["cache-epoch"]

    def test_baseline_grandfathers_finding(self, analyze, tmp_path):
        source = CACHE_CLASS_HEADER + """
        def add(self, row):
            self.rows.append(row)
    """
        flagged = analyze(source, CHECKERS)
        assert len(flagged.findings) == 1
        baseline_path = tmp_path / "baseline.json"
        baseline_path.write_text(
            json.dumps(
                {
                    "findings": [
                        {
                            "file": flagged.findings[0].file,
                            "rule": flagged.findings[0].rule_id,
                            "message": flagged.findings[0].message,
                            "why": "fixture: grandfathered on purpose",
                        }
                    ]
                }
            )
        )
        result = analyze(source, CHECKERS, baseline=str(baseline_path))
        assert result.clean
        assert [f.rule_id for f in result.baselined] == ["cache-epoch"]


class TestShippedClassesSatisfyTheDiscipline:
    def test_pvc_table_and_relation_are_clean(self, analyze):
        from pathlib import Path

        import repro.db.pvc_table as pvc_table
        import repro.db.relation as relation

        for module in (pvc_table, relation):
            source = Path(module.__file__).read_text(encoding="utf-8")
            result = analyze(source, CHECKERS)
            assert result.clean, result.findings

    def test_reintroduced_countkeyed_staleness_is_flagged(self, analyze):
        # Strip the bump from a faithful miniature of PVCTable.update_rows
        # and the checker must notice.
        result = analyze(
            """
    class PVCTable:
        def __init__(self, schema):
            self.schema = schema
            self.rows = []
            self._version = 0
            self._scan_cache = None
            self._index_cache = {}
            self._column_cache = {}

        def update_rows(self, predicate, rewrite):
            new_rows = []
            changed = 0
            for row in self.rows:
                if predicate(row):
                    new_rows.append(rewrite(row))
                    changed += 1
                else:
                    new_rows.append(row)
            self.rows = new_rows
            return changed
    """,
            CHECKERS,
        )
        assert rule_ids(result) == ["cache-epoch"]


if __name__ == "__main__":
    raise SystemExit(pytest.main([__file__, "-v"]))
