"""repro.resilience — deadlines, fault injection, bounded degradation.

The robustness layer threaded through the whole stack.  Two small,
dependency-free modules:

* :mod:`repro.resilience.deadline` — a wall-clock :class:`Deadline`
  derived from ``EvalSpec.time_limit`` and propagated into the inner
  loops of exact compilation, per-row Sprout compilation, Monte-Carlo
  rounds and approximate refinement via an ambient
  :func:`deadline_scope`.  Cooperative checkpoints
  (:func:`check_deadline`) raise :class:`DeadlineExceeded`, which the
  engine adapters convert into either a sound partial answer
  (``spec.on_timeout == "partial"``) or a typed
  :class:`~repro.errors.QueryTimeoutError` carrying that partial answer
  (``spec.on_timeout == "raise"``).

* :mod:`repro.resilience.faults` — a deterministic fault-injection
  harness.  A seeded :class:`FaultPlan` binds crash/hang/slow/pickle/
  transient-IO :class:`FaultSpec` entries to *named fault points*
  (:func:`fault_point` calls instrumented in the pool, the engine
  adapters and the server).  When no plan is installed every fault
  point is a strict no-op.

Together with the pool watchdog (``parallel.pool``), server drain
(``server.app``) and the client retry policy (``server.client``) these
give the stack one contract: every request either completes, returns a
sound partial answer, or fails with a typed error — within a bounded
time, even under injected chaos.
"""

from repro.resilience.deadline import (
    Deadline,
    DeadlineExceeded,
    check_deadline,
    current_deadline,
    deadline_from_spec,
    deadline_scope,
)
from repro.resilience.faults import (
    FAULT_KINDS,
    FaultPlan,
    FaultSpec,
    active_plan,
    clear_plan,
    fault_plan,
    fault_point,
    install_plan,
)

__all__ = [
    "Deadline",
    "DeadlineExceeded",
    "check_deadline",
    "current_deadline",
    "deadline_from_spec",
    "deadline_scope",
    "FAULT_KINDS",
    "FaultPlan",
    "FaultSpec",
    "active_plan",
    "clear_plan",
    "fault_plan",
    "fault_point",
    "install_plan",
]
