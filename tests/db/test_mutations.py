"""Mutable pvc-tables: epochs, incremental cache patching, delta feed.

The headline regression here is the stale-cache bug this PR fixes: the
scan/index/column caches used to be keyed on ``len(self.rows)``, so an
**equal-size in-place update** (same row count, different data) kept
serving the pre-update caches.  Epoch-keyed caches must never do that.
"""

from __future__ import annotations

import pytest

from repro.algebra.expressions import ONE, Var, ssum
from repro.db.mutations import Delta, DeltaLog, LineageIndex
from repro.db.pvc_table import PVCDatabase, PVCTable, merge_annotated_rows
from repro.db.schema import Schema
from repro.errors import (
    DistributionError,
    QueryValidationError,
    SchemaError,
)
from repro.prob.variables import VariableRegistry


def small_table() -> PVCTable:
    table = PVCTable(Schema(["sid", "shop"]))
    table.add((1, "M&S"), Var("x1"))
    table.add((2, "Boots"), Var("x2"))
    table.add((3, "Tesco"), Var("x3"))
    return table


def fresh_db() -> PVCDatabase:
    db = PVCDatabase(registry=VariableRegistry())
    db.create_table("items", ["name", "price"])
    return db


class TestEpochDiscipline:
    def test_every_mutator_bumps_the_epoch(self):
        table = small_table()
        epoch = table.epoch
        table.add((4, "Spar"), Var("x4"))
        assert table.epoch == epoch + 1
        table.update_rows(
            lambda row: row.values[0] == 4,
            lambda row: row.__class__((4, "Lidl"), row.annotation),
        )
        assert table.epoch == epoch + 2
        table.delete_rows(lambda row: row.values[0] == 4)
        assert table.epoch == epoch + 3
        table.invalidate_caches()
        assert table.epoch == epoch + 4

    def test_equal_size_update_invalidates_scan_cache(self):
        # The PR-10 regression: same row count, different data.  A
        # len()-keyed cache would return the pre-update scan here.
        table = small_table()
        before = table.scan_rows()
        assert ((1, "M&S"), Var("x1")) in before
        matched = table.update_rows(
            lambda row: row.values[1] == "M&S",
            lambda row: row.__class__((1, "Ocado"), row.annotation),
        )
        assert matched["rows"] == 1
        assert len(table) == 3  # unchanged cardinality
        after = table.scan_rows()
        assert ((1, "Ocado"), Var("x1")) in after
        assert all(values != (1, "M&S") for values, _ in after)

    def test_equal_size_update_invalidates_hash_index(self):
        table = small_table()
        index = table.hash_index((1,))
        assert ("M&S",) in index
        table.update_rows(
            lambda row: row.values[1] == "M&S",
            lambda row: row.__class__((1, "Ocado"), row.annotation),
        )
        index = table.hash_index((1,))
        assert ("M&S",) not in index
        assert index[("Ocado",)] == [((1, "Ocado"), Var("x1"))]

    def test_equal_size_update_invalidates_column_caches(self):
        table = small_table()
        assert table.value_columns()[1][0] == "M&S"
        assert table.annotation_column()[0] == Var("x1")
        table.update_rows(
            lambda row: row.values[1] == "M&S",
            lambda row: row.__class__((1, "Ocado"), Var("x9")),
        )
        assert table.value_columns()[1][0] == "Ocado"
        assert table.annotation_column()[0] == Var("x9")

    def test_database_generation_moves_on_every_mutation(self):
        db = fresh_db()
        generation = db.generation
        db.insert("items", ("inkjet", 99), p=0.7)
        assert db.generation > generation
        generation = db.generation
        db.update("items", {"name": "inkjet"}, set_values={"price": 120})
        assert db.generation > generation
        generation = db.generation
        db.update("items", {"name": "inkjet"}, p=0.4)
        assert db.generation > generation  # registry epoch moved
        generation = db.generation
        db.delete("items", {"name": "inkjet"})
        assert db.generation > generation

    def test_epoch_vector_includes_registry_sentinel(self):
        db = fresh_db()
        db.insert("items", ("inkjet", 99), p=0.7)
        epochs = dict(db.epochs())
        assert "$registry" in epochs
        db.update("items", {"name": "inkjet"}, p=0.2)
        assert dict(db.epochs())["$registry"] > epochs["$registry"]


class TestIncrementalPatching:
    def test_append_patches_cached_scan_in_place(self):
        table = small_table()
        table.scan_rows()
        table.hash_index((1,))
        table.add((4, "Spar"), Var("x4"))
        # Patched caches are current (no rebuild) and correct.
        assert table._scan_cache[0] == table.epoch
        assert table.scan_rows()[-1] == ((4, "Spar"), Var("x4"))
        assert table.hash_index((1,))[("Spar",)] == [((4, "Spar"), Var("x4"))]

    def test_append_duplicate_merges_annotations_like_fresh_build(self):
        table = small_table()
        table.scan_rows()
        table.add((1, "M&S"), Var("x9"))
        incremental = table.scan_rows()
        rebuilt = merge_annotated_rows(
            (row.values, row.annotation) for row in table.rows
        )
        assert incremental == rebuilt
        assert incremental[0] == ((1, "M&S"), ssum([Var("x1"), Var("x9")]))

    def test_zero_annotated_append_keeps_merged_view(self):
        table = small_table()
        before = list(table.scan_rows())
        table.add((9, "Ghost"), ssum([]))  # zero annotation
        assert table.scan_rows() == before
        assert table._scan_cache[0] == table.epoch

    def test_update_patches_only_touched_buckets(self):
        table = small_table()
        table.hash_index((1,))
        untouched = table.hash_index((1,))[("Boots",)]
        info = table.update_rows(
            lambda row: row.values[1] == "M&S",
            lambda row: row.__class__((1, "Ocado"), row.annotation),
        )
        assert info["buckets_patched"] == 2  # M&S removed, Ocado added
        assert not info["caches_dropped"]
        # The untouched bucket list survived by reference.
        assert table.hash_index((1,))[("Boots",)] is untouched

    def test_delete_patches_scan_and_buckets(self):
        table = small_table()
        table.scan_rows()
        table.hash_index((1,))
        info = table.delete_rows(lambda row: row.values[1] == "Boots")
        assert info["rows"] == 1
        assert ("Boots",) not in table.hash_index((1,))
        assert [values for values, _ in table.scan_rows()] == [
            (1, "M&S"),
            (3, "Tesco"),
        ]

    def test_patched_caches_match_fresh_table(self):
        table = small_table()
        table.scan_rows()
        table.hash_index((1,))
        table.add((1, "M&S"), Var("x4"))
        table.update_rows(
            lambda row: row.values[0] == 2,
            lambda row: row.__class__((2, "Superdrug"), row.annotation),
        )
        table.delete_rows(lambda row: row.values[0] == 3)
        fresh = PVCTable(table.schema, list(table.rows))
        assert table.scan_rows() == fresh.scan_rows()
        assert table.hash_index((1,)) == fresh.hash_index((1,))

    def test_cold_caches_stay_cold(self):
        table = small_table()
        info = table.update_rows(
            lambda row: row.values[0] == 1,
            lambda row: row.__class__((1, "Ocado"), row.annotation),
        )
        assert info["caches_dropped"]
        assert table._scan_cache is None


class TestDatabaseMutationAPI:
    def test_update_with_mapping_where_and_set(self):
        db = fresh_db()
        db.insert("items", ("inkjet", 99), p=0.7)
        db.insert("items", ("laser", 300), p=0.5)
        matched = db.update(
            "items", {"name": "inkjet"}, set_values={"price": 120}
        )
        assert matched == 1
        assert db["items"].rows[0].values == ("inkjet", 120)

    def test_update_with_callable_where_and_set(self):
        db = fresh_db()
        db.insert("items", ("inkjet", 99), p=0.7)
        db.insert("items", ("laser", 300), p=0.5)
        matched = db.update(
            "items",
            lambda row: row["price"] > 100,
            set_values=lambda row: {"price": row["price"] * 2},
        )
        assert matched == 1
        assert db["items"].rows[1].values == ("laser", 600)

    def test_update_probability_reassigns_variable(self):
        db = fresh_db()
        expr = db.insert("items", ("inkjet", 99), p=0.7)
        (name,) = expr.variables
        assert db.registry[name][True] == pytest.approx(0.7)
        db.update("items", {"name": "inkjet"}, p=0.2)
        assert db.registry[name][True] == pytest.approx(0.2)

    def test_update_p_resolves_where_before_set_rewrite(self):
        # set_values rewrites the attribute the where-clause matches on;
        # the probability reassignment must still hit the matched rows.
        db = fresh_db()
        expr = db.insert("items", ("inkjet", 99), p=0.7)
        (name,) = expr.variables
        db.update(
            "items",
            {"name": "inkjet"},
            set_values={"name": "laser"},
            p=0.1,
        )
        assert db["items"].rows[0].values == ("laser", 99)
        assert db.registry[name][True] == pytest.approx(0.1)

    def test_update_p_requires_single_variable_annotation(self):
        db = fresh_db()
        db.insert("items", ("inkjet", 99))  # certain row (annotation 1)
        with pytest.raises(DistributionError):
            db.update("items", {"name": "inkjet"}, p=0.5)

    def test_update_requires_set_or_p(self):
        db = fresh_db()
        with pytest.raises(QueryValidationError):
            db.update("items", {"name": "inkjet"})

    def test_unknown_where_attribute_raises(self):
        db = fresh_db()
        with pytest.raises(SchemaError):
            db.update("items", {"colour": "red"}, set_values={"price": 1})

    def test_unknown_set_attribute_raises(self):
        db = fresh_db()
        db.insert("items", ("inkjet", 99))
        with pytest.raises(SchemaError):
            db.update("items", {"name": "inkjet"}, set_values={"colour": "red"})

    def test_delete_removes_matching_rows(self):
        db = fresh_db()
        db.insert("items", ("inkjet", 99), p=0.7)
        db.insert("items", ("laser", 300), p=0.5)
        assert db.delete("items", {"name": "inkjet"}) == 1
        assert len(db["items"]) == 1
        assert db.delete("items", {"name": "missing"}) == 0

    def test_bad_where_type_raises(self):
        db = fresh_db()
        with pytest.raises(QueryValidationError):
            db.delete("items", 42)


class TestDeltaFeed:
    def test_mutations_are_logged(self):
        db = fresh_db()
        db.insert("items", ("inkjet", 99), p=0.7)
        db.update("items", {"name": "inkjet"}, set_values={"price": 1})
        db.update("items", {"name": "inkjet"}, p=0.3)
        db.delete("items", {"name": "inkjet"})
        stats = db.deltas.stats()
        assert stats["insert"] == 1
        assert stats["update"] == 2
        assert stats["delete"] == 1
        assert stats["total"] == 4

    def test_only_probability_updates_carry_changed_variables(self):
        db = fresh_db()
        db.insert("items", ("inkjet", 99), p=0.7)
        db.update("items", {"name": "inkjet"}, set_values={"price": 1})
        assert db.deltas.last().changed_variables == frozenset()
        db.update("items", {"name": "inkjet"}, p=0.3)
        assert db.deltas.last().changed_variables == {"items_0"}

    def test_no_op_mutations_notify_nothing(self):
        db = fresh_db()
        db.insert("items", ("inkjet", 99), p=0.7)
        total = db.deltas.total
        assert db.update("items", {"name": "nope"}, set_values={"price": 1}) == 0
        assert db.delete("items", {"name": "nope"}) == 0
        assert db.deltas.total == total

    def test_listeners_are_weak(self):
        db = fresh_db()

        class Cache:
            def __init__(self):
                self.seen = []

            def on_mutation(self, delta):
                self.seen.append(delta)

        cache = Cache()
        db.subscribe(cache.on_mutation)
        db.subscribe(cache.on_mutation)  # idempotent
        assert len(db._listeners) == 1
        db.insert("items", ("inkjet", 99), p=0.7)
        assert len(cache.seen) == 1
        del cache
        db.insert("items", ("laser", 300), p=0.5)
        assert db._listeners == []


class TestLineageIndex:
    def test_record_and_pop_by_variable(self):
        index = LineageIndex()
        index.record("key-a", {"x", "y"})
        index.record("key-b", {"y", "z"})
        assert index.dependents("y") == {"key-a", "key-b"}
        popped = index.pop({"x"})
        assert popped == {"key-a"}
        assert index.dependents("y") == {"key-b"}
        assert len(index) == 1

    def test_discard_unlinks_both_directions(self):
        index = LineageIndex()
        index.record("key-a", {"x"})
        index.discard("key-a")
        assert index.dependents("x") == set()
        assert index.pop({"x"}) == set()

    def test_delta_log_bounded(self):
        log = DeltaLog(max_entries=2)
        for i in range(5):
            log.append(Delta(
                table="t", kind="insert", rows=1, variables=frozenset(),
                cardinality_changed=True, epoch=i, generation=i,
            ))
        assert log.total == 5
        assert log.stats()["retained"] == 2


if __name__ == "__main__":
    raise SystemExit(pytest.main([__file__, "-v"]))
