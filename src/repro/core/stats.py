"""Statistics over decomposition trees.

Used by the experiment harness to report the structural quantities the
paper's complexity analysis talks about: tree sizes, the number of
mutex (⊔) nodes introduced by Shannon expansion, and the sizes of the
probability distributions materialised at the nodes (the ``|pᵢ|`` of
Theorem 2's ``O(Π |pᵢ|)`` bound).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.dtree import (
    CompareNode,
    CompileContext,
    ConstLeaf,
    DTree,
    MPlusNode,
    MutexNode,
    PlusNode,
    TensorNode,
    TimesNode,
    VarLeaf,
)

__all__ = ["DTreeStats", "collect_stats"]


@dataclass
class DTreeStats:
    """Structural summary of a d-tree (DAG-aware: shared nodes count once)."""

    dag_size: int = 0
    depth: int = 0
    leaf_count: int = 0
    var_leaves: int = 0
    const_leaves: int = 0
    plus_nodes: int = 0
    times_nodes: int = 0
    mplus_nodes: int = 0
    tensor_nodes: int = 0
    compare_nodes: int = 0
    mutex_nodes: int = 0
    mutex_branches: int = 0
    max_distribution_size: int | None = None
    node_distribution_sizes: list = field(default_factory=list)

    @property
    def decomposition_nodes(self) -> int:
        """Nodes created by the four independence rules (1-4)."""
        return (
            self.plus_nodes
            + self.times_nodes
            + self.mplus_nodes
            + self.tensor_nodes
            + self.compare_nodes
        )

    def distribution_cost(self) -> int:
        """``Π |pᵢ|``-style upper bound actually observed: the sum over
        convolution nodes of the product of child distribution sizes."""
        return sum(self.node_distribution_sizes)


def collect_stats(tree: DTree, ctx: CompileContext | None = None) -> DTreeStats:
    """Walk the d-tree DAG and summarise its structure.

    When a :class:`CompileContext` is given, the per-node distribution
    sizes are recorded as well (this evaluates the d-tree).
    """
    stats = DTreeStats()
    for node in tree.iter_unique():
        stats.dag_size += 1
        if isinstance(node, VarLeaf):
            stats.var_leaves += 1
            stats.leaf_count += 1
        elif isinstance(node, ConstLeaf):
            stats.const_leaves += 1
            stats.leaf_count += 1
        elif isinstance(node, PlusNode):
            stats.plus_nodes += 1
        elif isinstance(node, TimesNode):
            stats.times_nodes += 1
        elif isinstance(node, MPlusNode):
            stats.mplus_nodes += 1
        elif isinstance(node, TensorNode):
            stats.tensor_nodes += 1
        elif isinstance(node, CompareNode):
            stats.compare_nodes += 1
        elif isinstance(node, MutexNode):
            stats.mutex_nodes += 1
            stats.mutex_branches += len(node.branches)
        if ctx is not None:
            size = len(node.distribution(ctx))
            stats.node_distribution_sizes.append(size)
    stats.depth = tree.depth()
    if stats.node_distribution_sizes:
        stats.max_distribution_size = max(stats.node_distribution_sizes)
    return stats
