"""Experiment C (Figure 8a): varying the number of variables #v.

Paper parameters: L=90, R=0, #cl=2, #l=2, maxv=5, c=3, θ is =, MIN,
#v ∈ [0, 300], #runs=40.

Scaled parameters: L=12, #v ∈ [3, 96].  Expected shape: the #SAT-style
easy/hard/easy phase transition — few variables decompose quickly into
mutually exclusive branches, many variables make clauses independent, and
the hard regime (with large run-to-run variance) sits in between.
Measured here: ~1.6ms → ~20ms (peak at #v≈24, ±18ms) → ~3.5ms.
"""

from __future__ import annotations

if __package__ in (None, ""):  # direct script execution: python benchmarks/...
    import pathlib
    import sys

    sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent))

import pytest

from benchmarks.common import BenchReport, average_time, print_series, run_point
from repro.workloads.random_expr import ExprParams

BASE = ExprParams(
    left_terms=12,
    right_terms=0,
    clauses=2,
    literals=2,
    max_value=5,
    constant=3,
    theta="=",
    agg_left="MIN",
)

V_VALUES = [3, 4, 6, 9, 14, 24, 48, 96]
RUNS = 3


def _params(variables: int) -> ExprParams:
    return BASE.with_(variables=variables)


@pytest.mark.parametrize("variables", V_VALUES)
def bench_variables(benchmark, variables):
    benchmark.pedantic(
        average_time, args=(_params(variables), RUNS), rounds=1, iterations=1
    )


def main():
    report = BenchReport("exp_c")
    rows = []
    for variables in V_VALUES:
        mean, stdev = run_point(_params(variables), runs=RUNS, seed=variables)
        rows.append((variables, f"{mean*1000:.1f}ms", f"±{stdev*1000:.1f}"))
        report.add("MIN", {"variables": variables, "runs": RUNS}, mean=mean, stdev=stdev)
    print_series(
        "Experiment C — easy/hard/easy in #v (Figure 8a)",
        ["#v", "mean", "stdev"],
        rows,
    )
    report.finish()


if __name__ == "__main__":
    main()
