"""Runtime support for generated kernels.

The emitter (:mod:`repro.codegen.emit`) produces plain Python source; the
handful of names that source needs beyond builtins — world lookups with
the executor's exact error message, hash-index construction that reuses a
:class:`~repro.db.relation.Relation`'s cached index, the ``ModuleExpr``
marker for symbolic filter guards — live here so every kernel shares one
vetted implementation.

This module also owns the two process-wide knobs:

* :func:`codegen_enabled` — the ``REPRO_CODEGEN`` escape hatch (default
  on; ``REPRO_CODEGEN=0`` restores the tree-walking interpreter
  everywhere).  An explicit ``True``/``False`` (from ``EvalSpec.codegen``
  or a session keyword) overrides the environment.
* :func:`codegen_strict` — ``REPRO_CODEGEN_STRICT=1`` turns silent
  interpreter fallback on compile failure into a raised error; the test
  suite runs strict so emitter bugs cannot hide behind the fallback.

and the volatile counters (:func:`runtime_stats`) surfaced as
``codegen_used`` / ``codegen_compile_seconds`` / ``kernel_cache_hits`` in
result stats.
"""

from __future__ import annotations

import os
import threading

from repro.algebra.semimodule import ModuleExpr
from repro.db.pvc_table import tuple_getter
from repro.errors import QueryValidationError

__all__ = [
    "CodegenUnsupported",
    "codegen_enabled",
    "codegen_strict",
    "kernel_table",
    "kernel_index",
    "KERNEL_GLOBALS",
    "runtime_stats",
    "reset_runtime_stats",
]


class CodegenUnsupported(Exception):
    """The plan (or its binding to a database) has no compiled form.

    Raising this is always recoverable: callers fall back to the
    tree-walking interpreter, which remains the conformance oracle.
    """


_OFF_VALUES = frozenset({"0", "false", "no", "off"})


def codegen_enabled(override: bool | None = None) -> bool:
    """Whether compiled execution is active.

    ``override`` (an ``EvalSpec.codegen`` value or explicit keyword)
    wins; otherwise the ``REPRO_CODEGEN`` environment variable decides,
    defaulting to enabled.
    """
    if override is not None:
        return bool(override)
    return os.environ.get("REPRO_CODEGEN", "1").strip().lower() not in _OFF_VALUES


def codegen_strict() -> bool:
    """Whether compile failures should raise instead of falling back."""
    return os.environ.get("REPRO_CODEGEN_STRICT", "").strip().lower() not in (
        "",
        *_OFF_VALUES,
    )


def _lookup(world, name: str):
    try:
        return world[name]
    except KeyError:
        raise QueryValidationError(
            f"world has no relation named {name!r}"
        ) from None


def kernel_table(world, name: str) -> dict:
    """The ``{values: multiplicity}`` mapping of one world relation.

    Accepts both :class:`~repro.db.relation.Relation` worlds (the public
    ``execute_deterministic`` surface) and the raw-dict worlds the bound
    per-world paths build, with the interpreter's exact error for a
    missing relation.
    """
    rel = _lookup(world, name)
    tuples = getattr(rel, "_tuples", None)
    return rel if tuples is None else tuples


def kernel_index(world, name: str, attributes: tuple, key_indices: tuple) -> dict:
    """Hash buckets for a base-table build side.

    For :class:`Relation` worlds this delegates to the relation's own
    (cached) ``hash_index`` — bit-identical to the interpreter's build.
    Raw-dict worlds get the same bucket construction inline.
    """
    rel = _lookup(world, name)
    hash_index = getattr(rel, "hash_index", None)
    if hash_index is not None:
        return hash_index(attributes)
    key_of = tuple_getter(list(key_indices))
    buckets: dict = {}
    for values, multiplicity in rel.items():
        key = key_of(values)
        bucket = buckets.get(key)
        if bucket is None:
            buckets[key] = bucket = []
        bucket.append((values, multiplicity))
    return buckets


#: Names injected into every kernel's exec namespace (plan-specific
#: constants are merged on top).
KERNEL_GLOBALS = {
    "_table": kernel_table,
    "_index": kernel_index,
    "_MX": ModuleExpr,
}


_STATS = {
    "kernels_compiled": 0,
    "kernel_cache_hits": 0,
    "codegen_compile_seconds": 0.0,
}

#: Server executor threads compile kernels concurrently, so the counters
#: need a real lock: ``+=`` on a dict entry is a read-modify-write, and
#: lost updates here skew ``codegen_compile_seconds`` in every result.
_STATS_LOCK = threading.Lock()

_shared_state_ = {"_STATS_LOCK": ("_STATS",)}


def record_compile(seconds: float) -> None:
    with _STATS_LOCK:
        _STATS["kernels_compiled"] += 1
        _STATS["codegen_compile_seconds"] += seconds


def record_cache_hit() -> None:
    with _STATS_LOCK:
        _STATS["kernel_cache_hits"] += 1


def runtime_stats() -> dict:
    """A snapshot of the process-wide codegen counters."""
    with _STATS_LOCK:
        return dict(_STATS)


def reset_runtime_stats() -> None:
    with _STATS_LOCK:
        for key in _STATS:
            _STATS[key] = 0.0 if key == "codegen_compile_seconds" else 0
