"""Experiment B (Figure 8b): varying the number of terms L.

Paper parameters: #v=25, R=0, #cl=3, #l=3, maxv=200, c=100, θ is =,
L ∈ [1, 1000], for MIN, MAX, COUNT, SUM.

Scaled parameters: #v=10, maxv=50, c=25, L ∈ [5, 120].  Expected shape:
an initial super-linear ramp (cost of mutex partitioning while variables
are being eliminated) saturating to roughly linear growth once all
variables have been considered; MIN/MAX orders of magnitude cheaper than
COUNT/SUM.  This mimics "answering increasingly complex queries on a
database of constant size".
"""

from __future__ import annotations

if __package__ in (None, ""):  # direct script execution: python benchmarks/...
    import pathlib
    import sys

    sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent))

import pytest

from benchmarks.common import BenchReport, average_time, print_series, run_point
from repro.workloads.random_expr import ExprParams

BASE = ExprParams(
    right_terms=0,
    variables=10,
    clauses=3,
    literals=3,
    max_value=50,
    constant=25,
    theta="=",
)

L_VALUES = [5, 15, 30, 60, 120]
AGGS = ["MIN", "MAX", "COUNT", "SUM"]
RUNS = 2


def _params(agg: str, terms: int) -> ExprParams:
    constant = 25 if agg in ("MIN", "MAX") else max(1, terms // 2)
    if agg == "SUM":
        constant *= 25  # expected term value maxv/2
    return BASE.with_(agg_left=agg, left_terms=terms, constant=constant)


@pytest.mark.parametrize("agg", AGGS)
@pytest.mark.parametrize("terms", L_VALUES)
def bench_terms(benchmark, agg, terms):
    benchmark.pedantic(
        average_time, args=(_params(agg, terms), RUNS), rounds=1, iterations=1
    )


def main():
    report = BenchReport("exp_b")
    rows = []
    for agg in AGGS:
        for terms in L_VALUES:
            mean, stdev = run_point(_params(agg, terms), runs=RUNS, seed=terms)
            rows.append((agg, terms, f"{mean*1000:.1f}ms", f"±{stdev*1000:.1f}"))
            report.add(agg, {"L": terms, "runs": RUNS}, mean=mean, stdev=stdev)
    print_series(
        "Experiment B — runtime vs number of terms L (Figure 8b)",
        ["agg", "L", "mean", "stdev"],
        rows,
    )
    report.finish()


if __name__ == "__main__":
    main()
