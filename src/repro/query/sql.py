"""A small SQL front-end for the query language ``Q`` (Example 3).

Supports the fragment the paper's examples and TPC-H queries use::

    SELECT A, SUM(B) AS total FROM R WHERE A = 'x' GROUP BY A
    SELECT A FROM R, S WHERE B = C AND D <= 5
    SELECT A FROM R WHERE B = (SELECT MIN(C) FROM S)

* comma-separated FROM lists become products (attribute names must be
  disjoint, as in the algebra);
* scalar subqueries must be ungrouped single aggregates; they translate to
  a product with ``$_∅`` and a θ-comparison, exactly like Example 3's
  ``π_A σ_{B=γ}(R × $_{∅;γ←MIN(C)}(S))``;
* aggregates in the SELECT list group by the plain attributes listed
  (explicit GROUP BY must match them).

This front-end is a convenience for the examples and tests; the algebra in
:mod:`repro.query.ast` is the primary API.
"""

from __future__ import annotations

import re

from repro.errors import ParseError
from repro.query.ast import (
    AggSpec,
    GroupAgg,
    Product,
    Project,
    Query,
    Select,
    relation,
)
from repro.query.predicates import Comparison, attr, conj, lit

__all__ = ["parse_sql"]

_AGG_NAMES = {"SUM", "COUNT", "MIN", "MAX", "PROD"}

_TOKEN_RE = re.compile(
    r"\s*(?:(?P<name>[A-Za-z_][A-Za-z_0-9]*)"
    r"|(?P<number>\d+(?:\.\d+)?)"
    r"|(?P<string>'[^']*')"
    r"|(?P<op><=|>=|!=|<>|=|<|>)"
    r"|(?P<punct>[(),*]))"
)

_KEYWORDS = {"SELECT", "FROM", "WHERE", "GROUP", "BY", "AS", "AND"}


def _tokenize(text: str) -> list[tuple[str, str, int]]:
    tokens = []
    pos = 0
    while pos < len(text):
        match = _TOKEN_RE.match(text, pos)
        if match is None:
            if text[pos:].strip():
                raise ParseError(f"unexpected character {text[pos]!r}", pos)
            break
        for kind in ("name", "number", "string", "op", "punct"):
            value = match.group(kind)
            if value is not None:
                if kind == "name" and value.upper() in _KEYWORDS | _AGG_NAMES:
                    tokens.append(("keyword", value.upper(), match.start(kind)))
                else:
                    tokens.append((kind, value, match.start(kind)))
                break
        pos = match.end()
    return tokens


class _SqlParser:
    def __init__(self, text: str):
        self.text = text
        self.tokens = _tokenize(text)
        self.index = 0

    def peek(self):
        if self.index < len(self.tokens):
            return self.tokens[self.index]
        return (None, None, len(self.text))

    def advance(self):
        token = self.peek()
        self.index += 1
        return token

    def accept(self, value: str) -> bool:
        if self.peek()[1] == value:
            self.advance()
            return True
        return False

    def expect(self, value: str):
        kind, got, pos = self.advance()
        if got != value:
            raise ParseError(f"expected {value!r}, got {got!r}", pos)

    # -- grammar -------------------------------------------------------------

    def parse_query(self) -> Query:
        self.expect("SELECT")
        items = self.parse_select_list()
        self.expect("FROM")
        tables = self.parse_from_list()
        predicates, subqueries = [], []
        if self.accept("WHERE"):
            predicates, subqueries = self.parse_condition()
        groupby = None
        if self.accept("GROUP"):
            self.expect("BY")
            groupby = self.parse_name_list()
        return self.build(items, tables, predicates, subqueries, groupby)

    def parse_select_list(self):
        items = [self.parse_select_item()]
        while self.accept(","):
            items.append(self.parse_select_item())
        return items

    def parse_select_item(self):
        kind, value, pos = self.advance()
        if kind == "keyword" and value in _AGG_NAMES:
            self.expect("(")
            if value == "COUNT" and self.accept("*"):
                source = None
            else:
                source = self.parse_attr_name()
            self.expect(")")
            output = f"{value.lower()}_{source or 'all'}"
            if self.accept("AS"):
                output = self.parse_attr_name()
            return ("agg", AggSpec.of(output, value, source))
        if kind == "name":
            target = value
            if self.accept("AS"):
                target = self.parse_attr_name()
                if target != value:
                    raise ParseError(
                        "column aliasing of plain attributes is not "
                        "supported; use the algebra's Extend operator",
                        pos,
                    )
            return ("attr", value)
        raise ParseError(f"unexpected token {value!r} in SELECT list", pos)

    def parse_from_list(self):
        tables = [self.parse_attr_name()]
        while self.accept(","):
            tables.append(self.parse_attr_name())
        return tables

    def parse_attr_name(self) -> str:
        kind, value, pos = self.advance()
        if kind != "name":
            raise ParseError(f"expected an identifier, got {value!r}", pos)
        return value

    def parse_name_list(self):
        names = [self.parse_attr_name()]
        while self.accept(","):
            names.append(self.parse_attr_name())
        return names

    def parse_condition(self):
        predicates: list[Comparison] = []
        subqueries: list[tuple] = []
        while True:
            self.parse_atom(predicates, subqueries)
            if not self.accept("AND"):
                break
        return predicates, subqueries

    def parse_atom(self, predicates, subqueries):
        left = self.parse_operand()
        kind, op, pos = self.advance()
        if kind != "op":
            raise ParseError(f"expected a comparison operator, got {op!r}", pos)
        if self.peek()[1] == "(" and self.tokens[self.index + 1][1] == "SELECT":
            self.expect("(")
            subquery = self.parse_query()
            self.expect(")")
            subqueries.append((left, op, subquery))
        else:
            right = self.parse_operand()
            predicates.append(Comparison(left, op, right))

    def parse_operand(self):
        kind, value, pos = self.advance()
        if kind == "name":
            return attr(value)
        if kind == "number":
            return lit(float(value) if "." in value else int(value))
        if kind == "string":
            return lit(value[1:-1])
        raise ParseError(f"unexpected operand {value!r}", pos)

    # -- translation -----------------------------------------------------------

    def build(self, items, tables, predicates, subqueries, groupby) -> Query:
        query: Query = relation(tables[0])
        for name in tables[1:]:
            query = Product(query, relation(name))

        # Scalar subqueries: product with $∅ aggregates plus θ-comparison.
        for left, op, subquery in subqueries:
            if not isinstance(subquery, GroupAgg) or subquery.groupby:
                raise ParseError(
                    "scalar subqueries must be single ungrouped aggregates"
                )
            query = Product(query, subquery)
            predicates.append(
                Comparison(left, op, attr(subquery.aggregations[0].output))
            )

        if predicates:
            query = Select(query, conj(*predicates))

        plain = [value for tag, value in items if tag == "attr"]
        aggs = [value for tag, value in items if tag == "agg"]
        if aggs:
            keys = groupby if groupby is not None else plain
            if set(plain) != set(keys):
                raise ParseError(
                    f"non-aggregated SELECT attributes {plain} must match "
                    f"GROUP BY {keys}"
                )
            # GroupAgg exposes group-by attributes first, then aggregates.
            return GroupAgg(query, tuple(keys), tuple(aggs))
        if groupby is not None:
            raise ParseError("GROUP BY without aggregates in SELECT")
        return Project(query, plain)


def parse_sql(text: str) -> Query:
    """Parse a SQL string into a ``Q``-algebra query.

    >>> q = parse_sql("SELECT shop, MAX(price) AS p FROM PS GROUP BY shop")
    >>> type(q).__name__
    'GroupAgg'
    """
    parser = _SqlParser(text)
    query = parser.parse_query()
    kind, value, pos = parser.peek()
    if kind is not None:
        raise ParseError(f"unexpected trailing token {value!r}", pos)
    return query
