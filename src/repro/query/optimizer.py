"""The rule-based logical optimizer — stage 1 of the step-I pipeline.

Step I of the paper's architecture (computing result tuples with symbolic
annotations) is executed as a three-stage pipeline: **logical optimizer**
(this module) → physical planner (:mod:`repro.query.physical`) → physical
executor (:mod:`repro.query.executor`).  This module rewrites ``Q``-algebra
trees with classical algebraic equivalences.  Because annotations live in
a commutative semiring, the standard bag-semantics equivalences hold in
*every* commutative semiring (Green et al. [7]) and therefore preserve not
just the answer tuples but their annotation *values* — hence all
probabilities and aggregate distributions.

Each rewrite is a named :class:`Rule` in a registry; :func:`optimize`
applies the registry to a fixpoint and :func:`optimize_traced` additionally
reports which rules fired on which pass (surfaced by
``Session.explain``).  The default registry:

* ``fold-constants``      — evaluate literal-only atoms and trivial
  self-equalities at plan time; drop true atoms, collapse to a single
  false atom (the planner lowers it to an empty result);
* ``merge-selections``    — ``σ_φ(σ_ψ(Q)) → σ_{φ∧ψ}(Q)`` with duplicate
  atoms removed (``σ_φ(σ_φ(Q)) → σ_φ(Q)``);
* ``pushdown-selections`` — push atoms through ``×`` (to the side holding
  their attributes), ``∪`` (into both operands), ``δ`` (rewriting the
  duplicated attribute to its source), ``π``, and ``$`` (atoms over
  group-by attributes only);
* ``collapse-projections``— ``π_A(π_B(Q)) → π_A(Q)``;
* ``pushdown-projections``— narrow base relations to the attributes some
  ancestor actually needs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Mapping, Sequence

from repro.db.schema import Schema
from repro.query.ast import (
    BaseRelation,
    Extend,
    GroupAgg,
    Product,
    Project,
    Query,
    Select,
    Union,
)
from repro.query.predicates import (
    AttrRef,
    Comparison,
    Literal,
    conj,
)

__all__ = [
    "Rule",
    "RuleFiring",
    "DEFAULT_RULES",
    "optimize",
    "optimize_traced",
    "merge_selections",
    "collapse_projections",
    "pushdown_selections",
    "pushdown_projections",
    "fold_constant_predicates",
]

#: Safety bound on fixpoint iteration; the default rules converge in 2-3
#: passes, so hitting this indicates a non-confluent rule pair.
MAX_PASSES = 10


@dataclass(frozen=True)
class Rule:
    """One named rewrite: a pure function ``Query → Query``."""

    name: str
    description: str
    apply: Callable[[Query, Mapping[str, Schema]], Query]


@dataclass(frozen=True)
class RuleFiring:
    """One trace entry: rule ``name`` changed the tree on pass ``pass_no``."""

    pass_no: int
    name: str

    def __repr__(self):
        return f"{self.name}@{self.pass_no}"


# -- selection merging --------------------------------------------------------


def merge_selections(query: Query, catalog: Mapping[str, Schema] | None = None) -> Query:
    """Fuse cascading selections into single deduplicated conjunctions.

    Like every rule in this module, returns ``query`` itself (not a
    rebuilt copy) when nothing changed, so the fixpoint driver detects
    convergence with an identity check instead of a deep tree comparison.
    """
    if isinstance(query, Select):
        child = merge_selections(query.child)
        atoms = list(query.predicate.atoms())
        cascaded = isinstance(child, Select)
        while isinstance(child, Select):
            atoms.extend(child.predicate.atoms())
            child = child.child
        deduped = list(dict.fromkeys(atoms))
        if not cascaded and deduped == atoms:
            if child is query.child:
                return query
            return Select(child, query.predicate)
        return Select(child, conj(*deduped))
    return _rebuild(query, merge_selections)


# -- projection collapsing ----------------------------------------------------


def collapse_projections(query: Query, catalog: Mapping[str, Schema] | None = None) -> Query:
    """Drop inner projections that an outer projection overrides."""
    if isinstance(query, Project):
        child = collapse_projections(query.child)
        while isinstance(child, Project):
            child = child.child
        if child is query.child:
            return query
        return Project(child, query.attributes)
    return _rebuild(query, collapse_projections)


# -- constant folding ---------------------------------------------------------


def fold_constant_predicates(query: Query, catalog: Mapping[str, Schema]) -> Query:
    """Evaluate atoms that need no data: literal θ literal comparisons."""

    def fold(node: Query) -> Query:
        if isinstance(node, Select):
            child = fold(node.child)
            kept: list[Comparison] = []
            for atom in node.predicate.atoms():
                verdict = _static_verdict(atom)
                if verdict is True:
                    continue
                if verdict is False:
                    # One canonical false atom; the physical planner lowers
                    # a constant-false selection to an empty result.
                    return Select(child, atom)
                kept.append(atom)
            if not kept:
                return child
            if child is node.child and len(kept) == len(node.predicate.atoms()):
                return node
            return Select(child, conj(*kept))
        return _rebuild(node, fold)

    return fold(query)


def _static_verdict(atom: Comparison):
    """True/False when the atom is decidable without data, else None.

    Only literal-to-literal comparisons qualify.  Reflexive atoms
    (``A = A``) are deliberately *not* folded: float NaN values make
    ``=``/``<=``/``>=`` non-reflexive at runtime, so folding them would
    change the answer set.
    """
    if isinstance(atom.left, Literal) and isinstance(atom.right, Literal):
        return bool(atom.op(atom.left.value, atom.right.value))
    return None


# -- selection pushdown -------------------------------------------------------


def pushdown_selections(query: Query, catalog: Mapping[str, Schema]) -> Query:
    """Push selection atoms as close to the base relations as possible.

    All rewrites are annotation-value-preserving: selections commute with
    ``×`` and ``δ``, distribute over ``∪``, commute with ``π`` (merged
    rows share all projected values, so the filtered condition expression
    is identical across merged alternatives), and commute with ``$`` for
    atoms over group-by attributes (dropping a group equals dropping all
    of its input rows).
    """

    def push(node: Query) -> Query:
        if not isinstance(node, Select):
            return _rebuild(node, push)
        child = node.child
        atoms = list(node.predicate.atoms())
        if not atoms:
            return push(child)
        if isinstance(child, Product):
            left_attrs = set(child.left.schema(catalog).attributes)
            right_attrs = set(child.right.schema(catalog).attributes)
            left_atoms, right_atoms, rest = [], [], []
            for atom in atoms:
                attrs = atom.attributes()
                if attrs and attrs <= left_attrs:
                    left_atoms.append(atom)
                elif attrs and attrs <= right_attrs:
                    right_atoms.append(atom)
                else:
                    rest.append(atom)
            if not left_atoms and not right_atoms:
                pushed = push(child)
                if pushed is child:
                    return node
                return Select(pushed, node.predicate)
            left = Select(child.left, conj(*left_atoms)) if left_atoms else child.left
            right = (
                Select(child.right, conj(*right_atoms)) if right_atoms else child.right
            )
            lowered = Product(push(left), push(right))
            if rest:
                return Select(lowered, conj(*rest))
            return lowered
        if isinstance(child, Union):
            return Union(
                push(Select(child.left, node.predicate)),
                push(Select(child.right, node.predicate)),
            )
        if isinstance(child, Extend):
            rewritten = [
                _replace_attribute(atom, child.target, child.source)
                for atom in atoms
            ]
            return Extend(
                push(Select(child.child, conj(*rewritten))),
                child.target,
                child.source,
            )
        if isinstance(child, Project):
            return Project(
                push(Select(child.child, node.predicate)), child.attributes
            )
        if isinstance(child, GroupAgg) and child.groupby:
            keys = set(child.groupby)
            below = [atom for atom in atoms if atom.attributes() <= keys]
            above = [atom for atom in atoms if not atom.attributes() <= keys]
            if not below:
                pushed = push(child)
                if pushed is child:
                    return node
                return Select(pushed, node.predicate)
            lowered = GroupAgg(
                push(Select(child.child, conj(*below))),
                child.groupby,
                child.aggregations,
            )
            if above:
                return Select(lowered, conj(*above))
            return lowered
        pushed = push(child)
        if pushed is child:
            return node
        return Select(pushed, node.predicate)

    return push(query)


def _replace_attribute(atom: Comparison, old: str, new: str) -> Comparison:
    """The atom with references to attribute ``old`` renamed to ``new``."""

    def swap(operand):
        if isinstance(operand, AttrRef) and operand.name == old:
            return AttrRef(new)
        return operand

    left, right = swap(atom.left), swap(atom.right)
    if left is atom.left and right is atom.right:
        return atom
    return Comparison(left, atom.op, right)


# -- projection pushdown ------------------------------------------------------


def pushdown_projections(query: Query, catalog: Mapping[str, Schema]) -> Query:
    """Insert narrowing projections directly above the leaf access paths.

    The projection lands *above* a selection sitting on a base relation
    (``π_keep(σ_φ(R))``), matching the canonical operator order that
    selection pushdown also converges to — the two rules are confluent.
    """
    required = set(query.schema(catalog).attributes)
    return _pushdown(query, required, catalog)


def _pushdown(query: Query, required: set, catalog) -> Query:
    if isinstance(query, BaseRelation):
        schema = query.schema(catalog)
        keep = [a for a in schema.attributes if a in required]
        if len(keep) < len(schema.attributes) and keep:
            return Project(query, keep)
        return query
    if isinstance(query, Select):
        if isinstance(query.child, BaseRelation):
            # Keep σ directly on the scan; narrow above it so the
            # predicate's attributes need not survive the projection.
            schema = query.child.schema(catalog)
            keep = [a for a in schema.attributes if a in required]
            if len(keep) < len(schema.attributes) and keep:
                return Project(Select(query.child, query.predicate), keep)
            return query
        needed = required | query.predicate.attributes()
        child = _pushdown(query.child, needed, catalog)
        return query if child is query.child else Select(child, query.predicate)
    if isinstance(query, Project):
        # The projection itself defines what is needed below.
        needed = set(query.attributes)
        child = _pushdown(query.child, needed, catalog)
        # Strip projections inserted directly underneath: the outer one
        # subsumes them, and dropping them here keeps the rule idempotent
        # (no collapse/pushdown oscillation across fixpoint passes).
        while isinstance(child, Project):
            child = child.child
        return query if child is query.child else Project(child, query.attributes)
    if isinstance(query, Product):
        left_attrs = set(query.left.schema(catalog).attributes)
        right_attrs = set(query.right.schema(catalog).attributes)
        left = _pushdown(query.left, required & left_attrs, catalog)
        right = _pushdown(query.right, required & right_attrs, catalog)
        if left is query.left and right is query.right:
            return query
        return Product(left, right)
    if isinstance(query, Union):
        # Union operands share the full schema; narrowing them would
        # change which tuples merge, so push nothing (projections above
        # the union already handle narrowing).
        left = _pushdown(
            query.left, set(query.left.schema(catalog).attributes), catalog
        )
        right = _pushdown(
            query.right, set(query.right.schema(catalog).attributes), catalog
        )
        if left is query.left and right is query.right:
            return query
        return Union(left, right)
    if isinstance(query, GroupAgg):
        idempotent = all(
            spec.monoid.name in ("MIN", "MAX") for spec in query.aggregations
        )
        if idempotent:
            # New merging projections are sound below MIN/MAX: the
            # monoids are idempotent, so (Φ₁+Φ₂)⊗m = Φ₁⊗m + Φ₂⊗m.
            needed = set(query.groupby)
            for spec in query.aggregations:
                if spec.attribute is not None:
                    needed.add(spec.attribute)
        else:
            # SUM/COUNT/PROD count *tuples*; inserting a projection that
            # merges distinct tuples would change multiplicities under
            # set semantics, so require the full child schema (existing
            # user projections below are untouched and remain sound).
            needed = set(query.child.schema(catalog).attributes)
        child = _pushdown(query.child, needed, catalog)
        if child is query.child:
            return query
        return GroupAgg(child, query.groupby, query.aggregations)
    if isinstance(query, Extend):
        needed = (required - {query.target}) | {query.source}
        child = _pushdown(query.child, needed, catalog)
        if child is query.child:
            return query
        return Extend(child, query.target, query.source)
    return query


def _rebuild(query: Query, recurse) -> Query:
    """Apply ``recurse`` to the children of a node, preserving its shape.

    Returns ``query`` itself when no child changed (identity preserved),
    so unchanged subtrees cost nothing in the fixpoint convergence check.
    """
    if isinstance(query, BaseRelation):
        return query
    if isinstance(query, Select):
        child = recurse(query.child)
        return query if child is query.child else Select(child, query.predicate)
    if isinstance(query, Project):
        child = recurse(query.child)
        return query if child is query.child else Project(child, query.attributes)
    if isinstance(query, Product):
        left, right = recurse(query.left), recurse(query.right)
        if left is query.left and right is query.right:
            return query
        return Product(left, right)
    if isinstance(query, Union):
        left, right = recurse(query.left), recurse(query.right)
        if left is query.left and right is query.right:
            return query
        return Union(left, right)
    if isinstance(query, GroupAgg):
        child = recurse(query.child)
        if child is query.child:
            return query
        return GroupAgg(child, query.groupby, query.aggregations)
    if isinstance(query, Extend):
        child = recurse(query.child)
        if child is query.child:
            return query
        return Extend(child, query.target, query.source)
    return query


# -- the registry and the fixpoint driver ------------------------------------

DEFAULT_RULES: tuple[Rule, ...] = (
    Rule(
        "fold-constants",
        "evaluate literal-only and reflexive atoms at plan time",
        fold_constant_predicates,
    ),
    Rule(
        "merge-selections",
        "σ_φ(σ_ψ(Q)) → σ_{φ∧ψ}(Q), deduplicating atoms",
        merge_selections,
    ),
    Rule(
        "pushdown-selections",
        "push selection atoms through ×, ∪, δ, π and $",
        pushdown_selections,
    ),
    Rule(
        "collapse-projections",
        "π_A(π_B(Q)) → π_A(Q)",
        collapse_projections,
    ),
    Rule(
        "pushdown-projections",
        "narrow base relations to the attributes ancestors need",
        pushdown_projections,
    ),
)


def optimize_traced(
    query: Query,
    catalog: Mapping[str, Schema],
    rules: Sequence[Rule] | None = None,
) -> tuple[Query, tuple[RuleFiring, ...]]:
    """Apply ``rules`` to a fixpoint; also report which rules fired when."""
    registry = DEFAULT_RULES if rules is None else tuple(rules)
    firings: list[RuleFiring] = []
    for pass_no in range(1, MAX_PASSES + 1):
        changed = False
        for rule in registry:
            rewritten = rule.apply(query, catalog)
            # Rules preserve identity on no-op subtrees, so the common
            # case is a cheap identity check; the structural comparison
            # only runs for rules that rebuilt an equal tree.
            if rewritten is not query and rewritten != query:
                firings.append(RuleFiring(pass_no, rule.name))
                query = rewritten
                changed = True
        if not changed:
            break
    return query, tuple(firings)


def optimize(
    query: Query,
    catalog: Mapping[str, Schema],
    rules: Sequence[Rule] | None = None,
) -> Query:
    """Apply all rewrites to a fixpoint; the result is equivalent."""
    return optimize_traced(query, catalog, rules)[0]
