"""Registries of independent random variables and their distributions.

A :class:`VariableRegistry` maps variable names to the discrete probability
distributions of the corresponding independent random variables.  It is the
``X`` of Section 2.1 together with the family ``(P_x)_{x∈X}``, and induces
the probability space implemented in :mod:`repro.prob.space`.

Variable values are *semiring* values: truth values for the Boolean
semiring (set semantics) or non-negative integers for the naturals semiring
(bag semantics).  Helpers are provided for the two common cases and for the
Boolean reduction of Proposition 2 (``P_x[⊥] = P_x[0]``).
"""

from __future__ import annotations

from typing import Iterable, Iterator, Mapping

from repro.errors import DistributionError
from repro.prob.distribution import Distribution

__all__ = ["VariableRegistry"]


class VariableRegistry:
    """Maps variable names to distributions of independent random variables.

    >>> reg = VariableRegistry()
    >>> _ = reg.bernoulli("x", 0.3)
    >>> reg["x"][True]
    0.3
    """

    def __init__(self, distributions: Mapping[str, Distribution] | None = None):
        self._distributions: dict[str, Distribution] = {}
        #: Monotonic epoch: bumped whenever a name is added or an existing
        #: distribution is replaced via :meth:`reassign`.  Caches derived
        #: from the registry (d-tree distributions in particular) key their
        #: validity on this counter together with the table epochs.
        self._version = 0
        if distributions:
            for name, dist in distributions.items():
                self.declare(name, dist)

    @property
    def epoch(self) -> int:
        return self._version

    # -- declaration ---------------------------------------------------------

    def declare(self, name: str, distribution: Distribution) -> Distribution:
        """Register ``name`` with an explicit distribution.

        Re-declaring a name with a *different* distribution is an error:
        the variables of a probability space are fixed and independent.
        Mutation paths that legitimately change a probability (e.g.
        ``UPDATE ... p=``) go through :meth:`reassign` instead, which is
        wired to cache invalidation.
        """
        existing = self._distributions.get(name)
        if existing is not None and not existing.almost_equals(distribution):
            raise DistributionError(
                f"variable {name!r} is already declared with a different "
                f"distribution"
            )
        if existing is None:
            self._version += 1
        self._distributions[name] = distribution
        return distribution

    def reassign(self, name: str, distribution: Distribution) -> Distribution:
        """Replace the distribution of an already-declared variable.

        The escape hatch :meth:`declare` deliberately does not offer: the
        mutation API (:meth:`repro.db.pvc_table.PVCDatabase.update` with
        ``p=``) uses it to change an event's probability in place.  Every
        cached object derived from the old distribution becomes invalid;
        callers are responsible for routing the change through the
        lineage-based invalidation (a :class:`~repro.db.mutations.Delta`
        with the name in ``changed_variables``).
        """
        if name not in self._distributions:
            raise DistributionError(
                f"cannot reassign undeclared variable {name!r}"
            )
        self._version += 1
        self._distributions[name] = distribution
        return distribution

    def bernoulli(self, name: str, p: float) -> Distribution:
        """Declare a Boolean variable with ``P[⊤] = p`` (set semantics)."""
        return self.declare(name, Distribution.bernoulli(p))

    def integer(self, name: str, probs: Mapping[int, float]) -> Distribution:
        """Declare an N-valued variable (bag semantics), e.g. multiplicities."""
        for value in probs:
            if not isinstance(value, int) or value < 0:
                raise DistributionError(
                    f"bag-semantics variable {name!r} must take values in N, "
                    f"got {value!r}"
                )
        return self.declare(name, Distribution(probs))

    def constant(self, name: str, value) -> Distribution:
        """Declare a deterministic variable (Table 1's deterministic rows)."""
        return self.declare(name, Distribution.point(value))

    # -- lookup ---------------------------------------------------------------

    def __getitem__(self, name: str) -> Distribution:
        try:
            return self._distributions[name]
        except KeyError:
            raise DistributionError(
                f"variable {name!r} has no declared distribution"
            ) from None

    def __contains__(self, name: str) -> bool:
        return name in self._distributions

    def __iter__(self) -> Iterator[str]:
        return iter(self._distributions)

    def __len__(self) -> int:
        return len(self._distributions)

    def names(self) -> list[str]:
        return sorted(self._distributions)

    def items(self):
        return self._distributions.items()

    def restrict(self, names: Iterable[str]) -> "VariableRegistry":
        """The sub-registry containing only ``names``."""
        return VariableRegistry({name: self[name] for name in names})

    def boolean_reduction(self) -> "VariableRegistry":
        """The B-valued reduction of Proposition 2.

        Every variable is reduced to a Boolean one with
        ``P[⊥] = P_x[0]`` and ``P[⊤] = 1 - P[⊥]``.  For MIN/MAX
        aggregation this reduction leaves semimodule distributions
        unchanged while shrinking variable supports to two values.
        """
        reduced = VariableRegistry()
        for name, dist in self._distributions.items():
            p_zero = dist.probability_of(lambda v: v == 0 or v is False)
            reduced.bernoulli(name, 1.0 - p_zero)
        return reduced

    def __repr__(self):
        return f"VariableRegistry({len(self)} variables)"
