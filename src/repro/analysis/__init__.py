"""Self-hosted static analysis for the repro codebase.

The suite is both a CLI (``python -m repro.analysis src/repro``) and a
pytest-importable API::

    from repro.analysis import analyze_paths
    result = analyze_paths(["src/repro"])
    assert result.clean, "\\n".join(f.render() for f in result.findings)

Four codebase-specific checkers ride on a small framework (findings,
inline suppressions, committed baseline, reporters):

* ``locks`` — declared shared state is mutated only under its owning
  lock; no ``await`` under a held threading lock.
* ``forksafety`` — nothing unpicklable flows into pool workers.
* ``kernels`` — verifies invariants of kernels emitted by
  ``repro.codegen.emit`` over a differential corpus.
* ``statskeys`` — every stats key written by the engines is declared
  deterministic or volatile for answer fingerprinting.
"""

from __future__ import annotations

from repro.analysis.baseline import Baseline, write_baseline
from repro.analysis.findings import Finding
from repro.analysis.runner import (
    AnalysisContext,
    AnalysisResult,
    BaseChecker,
    Checker,
    analyze_paths,
    default_checkers,
)

__all__ = [
    "AnalysisContext",
    "AnalysisResult",
    "BaseChecker",
    "Baseline",
    "Checker",
    "Finding",
    "analyze_paths",
    "default_checkers",
    "write_baseline",
]
