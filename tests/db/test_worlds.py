"""Tests for possible-world enumeration of pvc-databases."""

import pytest

from repro.algebra.expressions import Var
from repro.algebra.semiring import BOOLEAN, NATURALS
from repro.db.pvc_table import PVCDatabase
from repro.db.worlds import enumerate_database_worlds, world_count
from repro.prob.variables import VariableRegistry


def two_table_db():
    reg = VariableRegistry()
    reg.bernoulli("x", 0.5)
    reg.bernoulli("y", 0.25)
    db = PVCDatabase(registry=reg, semiring=BOOLEAN)
    r = db.create_table("R", ["a"])
    r.add((1,), Var("x"))
    s = db.create_table("S", ["b"])
    s.add((2,), Var("y"))
    return db


class TestEnumeration:
    def test_world_count(self):
        assert world_count(two_table_db()) == 4

    def test_probabilities_sum_to_one(self):
        total = sum(p for _, p in enumerate_database_worlds(two_table_db()))
        assert total == pytest.approx(1.0)

    def test_each_world_has_all_tables(self):
        for world, _ in enumerate_database_worlds(two_table_db()):
            assert set(world) == {"R", "S"}

    def test_world_contents_follow_valuation(self):
        db = two_table_db()
        seen = set()
        for world, prob in enumerate_database_worlds(db):
            seen.add((len(world["R"]), len(world["S"])))
        assert seen == {(0, 0), (0, 1), (1, 0), (1, 1)}

    def test_specific_world_probability(self):
        db = two_table_db()
        both_present = sum(
            p
            for world, p in enumerate_database_worlds(db)
            if len(world["R"]) == 1 and len(world["S"]) == 1
        )
        assert both_present == pytest.approx(0.125)

    def test_unused_registry_variables_marginalised(self):
        db = two_table_db()
        db.registry.bernoulli("unused", 0.5)
        assert world_count(db) == 4  # still only x, y

    def test_bag_semantics_worlds(self):
        reg = VariableRegistry()
        reg.integer("m", {0: 0.5, 2: 0.5})
        db = PVCDatabase(registry=reg, semiring=NATURALS)
        table = db.create_table("R", ["a"])
        table.add((1,), Var("m"))
        multiplicities = {
            world["R"].multiplicity((1,))
            for world, _ in enumerate_database_worlds(db)
        }
        assert multiplicities == {0, 2}
