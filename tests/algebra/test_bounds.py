"""Tests for value bounds and bound-based comparison folding."""

import math

import pytest

from repro.algebra.bounds import fold_comparison_by_bounds, value_bounds
from repro.algebra.conditions import compare
from repro.algebra.expressions import Var
from repro.algebra.monoid import MAX, MIN, PROD, SUM
from repro.algebra.semimodule import MConst, aggsum, tensor
from repro.algebra.semiring import BOOLEAN, NATURALS
from repro.algebra.simplify import normalize
from repro.core.compile import Compiler
from repro.prob.space import ProbabilitySpace
from repro.prob.variables import VariableRegistry


def side(monoid, values, certain=()):
    terms = [
        tensor(Var(f"x{monoid.name}{i}"), MConst(monoid, v))
        for i, v in enumerate(values)
    ]
    terms += [MConst(monoid, v) for v in certain]
    return aggsum(monoid, terms)


class TestValueBounds:
    def test_min_bounds(self):
        expr = side(MIN, [10, 30])
        assert value_bounds(expr, True) == (10, math.inf)

    def test_min_with_certain_part(self):
        expr = side(MIN, [10, 30], certain=[20])
        assert value_bounds(expr, True) == (10, 20)

    def test_max_bounds(self):
        expr = side(MAX, [10, 30], certain=[15])
        assert value_bounds(expr, True) == (15, 30)

    def test_sum_bounds_boolean(self):
        expr = side(SUM, [5, 7], certain=[3])
        assert value_bounds(expr, True) == (3, 15)

    def test_sum_bounds_bag_semantics_unbounded_above(self):
        expr = side(SUM, [5, 7], certain=[3])
        low, high = value_bounds(expr, False)
        assert low == 3 and high == math.inf

    def test_prod_is_unbounded(self):
        expr = side(PROD, [2, 3])
        assert value_bounds(expr, True) == (-math.inf, math.inf)

    def test_constant_is_a_point(self):
        assert value_bounds(MConst(SUM, 7), True) == (7, 7)

    def test_non_module_unbounded(self):
        assert value_bounds(Var("x"), True) == (-math.inf, math.inf)


class TestFolding:
    def test_separated_le_folds_true(self):
        left = side(MAX, [10, 20])
        right = side(SUM, [30], certain=[25])
        assert fold_comparison_by_bounds(left, "<=", right, True) is True

    def test_separated_le_folds_false(self):
        left = side(MAX, [10], certain=[50])
        right = side(SUM, [5, 7])
        assert fold_comparison_by_bounds(left, "<=", right, True) is False

    def test_overlap_stays_undecided(self):
        left = side(MAX, [10, 40])
        right = side(SUM, [30])
        assert fold_comparison_by_bounds(left, "<=", right, True) is None

    def test_equality_disjoint_folds_false(self):
        left = side(SUM, [1, 2])  # ≤ 3
        right = side(SUM, [], certain=[10])
        assert fold_comparison_by_bounds(left, "=", right, True) is False

    def test_normalizer_applies_folding(self):
        left = side(MAX, [10, 20])
        right = aggsum(SUM, [MConst(SUM, 25)])
        cond = compare(left, "<=", right)
        assert normalize(cond, BOOLEAN).is_one()


class TestSoundness:
    """Bound folding never changes a compiled distribution."""

    @pytest.mark.parametrize("theta", ["<=", "<", ">=", ">", "=", "!="])
    def test_two_sided_comparisons_match_oracle(self, theta):
        reg = VariableRegistry()
        for i in range(3):
            reg.bernoulli(f"xMAX{i}", 0.3 + 0.2 * i)
        for i in range(3):
            reg.bernoulli(f"xSUM{i}", 0.25 + 0.2 * i)
        left = side(MAX, [5, 12, 30])
        right = side(SUM, [4, 8, 20])
        cond = compare(left, theta, right)
        compiled = Compiler(reg, BOOLEAN).distribution(cond)
        brute = ProbabilitySpace(reg, BOOLEAN).distribution_of(cond)
        assert compiled.almost_equals(brute)

    @pytest.mark.parametrize("theta", ["<=", ">", "="])
    def test_bag_semantics_soundness(self, theta):
        reg = VariableRegistry()
        reg.integer("xMIN0", {0: 0.4, 2: 0.6})
        reg.integer("xMIN1", {0: 0.5, 1: 0.5})
        reg.integer("xSUM0", {0: 0.3, 1: 0.4, 3: 0.3})
        left = side(MIN, [5, 9])
        right = aggsum(SUM, [tensor(Var("xSUM0"), MConst(SUM, 4))])
        cond = compare(left, theta, right)
        compiled = Compiler(reg, NATURALS).distribution(cond)
        brute = ProbabilitySpace(reg, NATURALS).distribution_of(cond)
        assert compiled.almost_equals(brute)

    def test_folding_reduces_compilation_work(self):
        reg = VariableRegistry()
        for i in range(6):
            reg.bernoulli(f"xMAX{i}", 0.5)
        reg.bernoulli("xSUM0", 0.5)
        # MAX over values all ≤ 20 vs a certain 25: decided outright.
        left = side(MAX, [5, 10, 15, 20, 12, 7])
        right = aggsum(SUM, [MConst(SUM, 25)])
        compiler = Compiler(reg, BOOLEAN)
        tree = compiler.compile(compare(left, "<=", right))
        assert compiler.mutex_nodes_created == 0
        assert tree.distribution(compiler.context)[True] == 1.0
