"""Tests for the Figure-4 rewriting (symbolic result construction)."""

import pytest

from repro.algebra.conditions import Compare
from repro.algebra.expressions import ONE, Var, sprod, ssum
from repro.algebra.monoid import MIN, SUM
from repro.algebra.parser import parse_expr
from repro.algebra.semimodule import AggSum, MConst, ModuleExpr, aggsum, tensor
from repro.algebra.semiring import BOOLEAN
from repro.db.pvc_table import PVCDatabase
from repro.prob.variables import VariableRegistry
from repro.query.ast import (
    AggSpec,
    Extend,
    GroupAgg,
    Product,
    Project,
    Select,
    Union,
    product_of,
    relation,
)
from repro.query.predicates import cmp_, conj, eq, lit
from repro.query.rewrite import evaluate_query


@pytest.fixture
def db():
    reg = VariableRegistry()
    database = PVCDatabase(registry=reg, semiring=BOOLEAN)
    r = database.create_table("R", ["a", "v"])
    for i, (a, v) in enumerate([(1, 10), (1, 20), (2, 30)]):
        reg.bernoulli(f"r{i}", 0.5)
        r.add((a, v), Var(f"r{i}"))
    s = database.create_table("S", ["b", "w"])
    for i, (b, w) in enumerate([(1, 100), (3, 300)]):
        reg.bernoulli(f"s{i}", 0.5)
        s.add((b, w), Var(f"s{i}"))
    return database


class TestBasicOperators:
    def test_base_relation_copies(self, db):
        result = evaluate_query(relation("R"), db)
        assert len(result) == 3
        assert result.rows[0].annotation == Var("r0")

    def test_select_concrete_filters(self, db):
        result = evaluate_query(Select(relation("R"), eq("a", 1)), db)
        assert len(result) == 2

    def test_project_sums_annotations(self, db):
        result = evaluate_query(Project(relation("R"), ["a"]), db)
        by_value = {row.values: row.annotation for row in result}
        assert by_value[(1,)] == ssum([Var("r0"), Var("r1")])
        assert by_value[(2,)] == Var("r2")

    def test_product_multiplies_annotations(self, db):
        result = evaluate_query(Product(relation("R"), relation("S")), db)
        assert len(result) == 6
        annotations = {row.annotation for row in result}
        assert sprod([Var("r0"), Var("s0")]) in annotations

    def test_join_keeps_matching_pairs(self, db):
        query = Select(Product(relation("R"), relation("S")), eq("a", "b"))
        result = evaluate_query(query, db)
        assert {row.values for row in result} == {(1, 10, 1, 100), (1, 20, 1, 100)}

    def test_union_merges_duplicates(self, db):
        r2 = db.create_table("R2", ["a"])
        db.registry.bernoulli("u0", 0.5)
        r2.add((1,), Var("u0"))
        query = Union(Project(relation("R"), ["a"]), relation("R2"))
        result = evaluate_query(query, db)
        by_value = {row.values: row.annotation for row in result}
        assert by_value[(1,)] == ssum([Var("r0"), Var("r1"), Var("u0")])

    def test_extend_copies_column(self, db):
        result = evaluate_query(Extend(relation("R"), "a2", "a"), db)
        assert result.rows[0].values == (1, 10, 1)

    def test_zero_annotations_dropped(self, db):
        db["R"].add((9, 90), parse_expr("0"))
        result = evaluate_query(Project(relation("R"), ["a"]), db)
        assert (9,) not in {row.values for row in result}


class TestAggregationRewriting:
    def test_example_8_global_aggregate(self, db):
        # $_{∅;α←SUM(v)}(R): single tuple, annotation 1_K.
        query = GroupAgg(relation("R"), [], [AggSpec.of("alpha", "SUM", "v")])
        result = evaluate_query(query, db)
        assert len(result) == 1
        row = result.rows[0]
        assert row.annotation == ONE
        expected = aggsum(
            SUM,
            [
                tensor(Var("r0"), MConst(SUM, 10)),
                tensor(Var("r1"), MConst(SUM, 20)),
                tensor(Var("r2"), MConst(SUM, 30)),
            ],
        )
        assert row.values[0] == expected

    def test_example_8_threshold_query(self, db):
        # π_∅ σ_{5≤α}($_{∅;α←MIN(v)}(R)): annotation 1_K · [5 ≤ α]
        agg = GroupAgg(relation("R"), [], [AggSpec.of("alpha", "MIN", "v")])
        query = Project(Select(agg, cmp_(lit(5), "<=", "alpha")), [])
        result = evaluate_query(query, db)
        assert len(result) == 1
        annotation = result.rows[0].annotation
        assert isinstance(annotation, Compare)
        assert isinstance(annotation.left, MConst)  # [5 ≤ Σ_MIN ...]

    def test_grouped_aggregate_builds_guard(self, db):
        query = GroupAgg(relation("R"), ["a"], [AggSpec.of("t", "SUM", "v")])
        result = evaluate_query(query, db)
        by_group = {row.values[0]: row for row in result}
        guard = by_group[1].annotation
        assert isinstance(guard, Compare)
        assert guard.op.symbol == "!="
        assert guard.left == ssum([Var("r0"), Var("r1")])

    def test_count_uses_constant_one(self, db):
        query = GroupAgg(relation("R"), ["a"], [AggSpec.of("n", "COUNT")])
        result = evaluate_query(query, db)
        by_group = {row.values[0]: row for row in result}
        gamma = by_group[1].values[1]
        assert isinstance(gamma, AggSum)
        assert all(term.arg.value == 1 for term in gamma.children)

    def test_global_aggregate_on_empty_selection(self, db):
        query = GroupAgg(
            Select(relation("R"), eq("a", 999)),
            [],
            [AggSpec.of("m", "MIN", "v")],
        )
        result = evaluate_query(query, db)
        assert len(result) == 1
        assert result.rows[0].values[0].is_module_zero()

    def test_selection_on_aggregate_multiplies_condition(self, db):
        agg = GroupAgg(relation("R"), ["a"], [AggSpec.of("t", "SUM", "v")])
        query = Project(Select(agg, cmp_("t", "<=", 25)), ["a"])
        result = evaluate_query(query, db)
        for row in result:
            # annotation contains both the guard and the threshold condition
            assert isinstance(row.annotation, (Compare,)) or row.annotation.variables

    def test_multiple_aggregates_per_group(self, db):
        query = GroupAgg(
            relation("R"),
            ["a"],
            [AggSpec.of("mn", "MIN", "v"), AggSpec.of("n", "COUNT")],
        )
        result = evaluate_query(query, db)
        row = {r.values[0]: r for r in result}[1]
        assert isinstance(row.values[1], ModuleExpr)
        assert row.values[1].monoid == MIN
        assert isinstance(row.values[2], ModuleExpr)


class TestHashJoinPath:
    def test_three_way_join_same_as_naive_product(self, db):
        t = db.create_table("T", ["c"])
        db.registry.bernoulli("t0", 0.5)
        t.add((1,), Var("t0"))
        pred = conj(eq("a", "b"), eq("a", "c"))
        fast = evaluate_query(Select(product_of(relation("R"), relation("S"), relation("T")), pred), db)
        assert {row.values for row in fast} == {
            (1, 10, 1, 100, 1),
            (1, 20, 1, 100, 1),
        }
        annotations = {row.annotation for row in fast}
        assert sprod([Var("r0"), Var("s0"), Var("t0")]) in annotations

    def test_local_constant_predicates_applied(self, db):
        pred = conj(eq("a", "b"), eq("v", 10))
        result = evaluate_query(
            Select(Product(relation("R"), relation("S")), pred), db
        )
        assert {row.values for row in result} == {(1, 10, 1, 100)}

    def test_residual_theta_join(self, db):
        pred = cmp_("v", "<", "w")
        result = evaluate_query(
            Select(Product(relation("R"), relation("S")), pred), db
        )
        assert len(result) == 6  # all R values below 100/300
