"""Regression tests for the true positives the analysis suite found.

Each test pins the *runtime* behavior of a fix made in this PR because
the self-hosted analyzer flagged the original code:

* ``repro.codegen.runtime`` counters raced under the server's executor
  threads (lost ``+=`` updates) — now guarded by ``_STATS_LOCK``;
* ``QueryServer._admit`` was check-then-act on ``_inflight`` (a burst
  could overshoot ``hard_limit``) — now an atomic check-and-claim;
* the ``batched`` stats key (numpy-dependent) leaked into answer
  fingerprints — now declared volatile;
* ``CompilationCache._store`` was renamed ``_store_locked`` to carry
  the caller-holds-lock contract the checker enforces.
"""

from __future__ import annotations

import threading

import pytest

from repro.codegen import runtime
from repro.server.app import QueryServer, ServerConfig, ServerOverloadedError
from repro.server.codec import VOLATILE_STAT_KEYS, fingerprint


class TestRuntimeStatsRace:
    def test_concurrent_record_compile_loses_no_updates(self):
        runtime.reset_runtime_stats()
        threads_n, per_thread = 8, 500
        start = threading.Barrier(threads_n)

        def hammer():
            start.wait()
            for _ in range(per_thread):
                runtime.record_compile(0.001)
                runtime.record_cache_hit()

        threads = [threading.Thread(target=hammer) for _ in range(threads_n)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        stats = runtime.runtime_stats()
        runtime.reset_runtime_stats()
        expected = threads_n * per_thread
        assert stats["kernels_compiled"] == expected
        assert stats["kernel_cache_hits"] == expected
        assert stats["codegen_compile_seconds"] == pytest.approx(
            expected * 0.001
        )

    def test_snapshot_is_a_copy(self):
        runtime.reset_runtime_stats()
        snapshot = runtime.runtime_stats()
        snapshot["kernels_compiled"] = 999
        assert runtime.runtime_stats()["kernels_compiled"] == 0


class TestAdmissionAtomicity:
    def _server(self, **overrides):
        from repro.db.pvc_table import PVCDatabase
        from repro.prob.variables import VariableRegistry

        db = PVCDatabase(registry=VariableRegistry())
        return QueryServer(db, ServerConfig(**overrides))

    def test_concurrent_admits_never_overshoot_hard_limit(self):
        hard = 8
        server = self._server(soft_limit=4, hard_limit=hard)
        threads_n = 32
        start = threading.Barrier(threads_n)
        admitted, shed = [], []
        record = threading.Lock()

        def arrive():
            start.wait()
            try:
                degraded = server._admit()
            except ServerOverloadedError:
                with record:
                    shed.append(1)
            else:
                with record:
                    admitted.append(degraded)

        threads = [threading.Thread(target=arrive) for _ in range(threads_n)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        # The whole point of the atomic check-and-claim: a simultaneous
        # burst can never admit past the hard limit, and every arrival
        # is either admitted or shed (none lost).
        assert len(admitted) == hard
        assert len(shed) == threads_n - hard
        assert server._inflight == hard
        assert server._counters["shed"] == len(shed)
        for _ in admitted:
            server._release_slot()
        assert server._inflight == 0

    def test_soft_limit_degrades_past_threshold(self):
        server = self._server(soft_limit=2, hard_limit=8)
        flags = [server._admit() for _ in range(4)]
        assert flags == [False, False, True, True]
        for _ in flags:
            server._release_slot()

    def test_draining_server_sheds_new_arrivals(self):
        server = self._server()
        with server._counters_lock:
            server._draining = True
        with pytest.raises(ServerOverloadedError):
            server._admit()
        assert server._counters["shed"] == 1
        assert server._inflight == 0


class TestBatchedFingerprint:
    PAYLOAD = {
        "engine": "montecarlo",
        "columns": ["name"],
        "rows": [
            {"values": ["ann"], "probability": {"low": 0.4, "high": 0.4}}
        ],
        "timings": {},
    }

    def test_batched_is_declared_volatile(self):
        assert "batched" in VOLATILE_STAT_KEYS

    def test_fingerprint_identical_across_numpy_legs(self):
        # The same seeded answer computed with and without the
        # vectorised evaluator differs only in stats["batched"]; the
        # fingerprints must not.
        with_numpy = dict(
            self.PAYLOAD, stats={"samples": 1000, "batched": True}
        )
        without_numpy = dict(
            self.PAYLOAD, stats={"samples": 1000, "batched": False}
        )
        assert fingerprint(with_numpy) == fingerprint(without_numpy)

    def test_deterministic_keys_still_fingerprint(self):
        a = dict(self.PAYLOAD, stats={"samples": 1000})
        b = dict(self.PAYLOAD, stats={"samples": 2000})
        assert fingerprint(a) != fingerprint(b)


class TestLockedHelperContract:
    def test_compilation_cache_store_helper_is_locked_suffixed(self):
        from repro.engine.base import CompilationCache

        assert hasattr(CompilationCache, "_store_locked")
        assert not hasattr(CompilationCache, "_store")

    def test_compilation_cache_still_caches(self):
        from repro.algebra.expressions import Var
        from repro.algebra.semiring import BOOLEAN
        from repro.core.compile import Compiler
        from repro.engine.base import CompilationCache
        from repro.prob.variables import VariableRegistry

        registry = VariableRegistry()
        registry.bernoulli("x", 0.5)
        cache = CompilationCache(Compiler(registry, BOOLEAN))
        first = cache.distribution(Var("x"))
        again = cache.distribution(Var("x"))
        assert first is again
        assert cache.hits == 1 and cache.misses == 1


if __name__ == "__main__":
    raise SystemExit(pytest.main([__file__, "-v"]))
