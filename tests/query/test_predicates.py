"""Unit tests for selection predicates."""

import pytest

from repro.algebra.conditions import Compare
from repro.algebra.expressions import Prod, Var
from repro.algebra.monoid import MIN
from repro.algebra.semimodule import MConst, aggsum, tensor
from repro.errors import QueryValidationError
from repro.query.predicates import (
    AttrRef,
    Comparison,
    Conjunction,
    TruePredicate,
    attr,
    cmp_,
    conj,
    eq,
    lit,
)


class TestOperands:
    def test_attr_resolve(self):
        assert attr("a").resolve({"a": 5}) == 5

    def test_attr_missing_raises(self):
        with pytest.raises(QueryValidationError, match="unknown attribute"):
            attr("z").resolve({"a": 5})

    def test_literal_resolve(self):
        assert lit(42).resolve({}) == 42

    def test_equality_and_hash(self):
        assert attr("a") == attr("a") and lit(1) == lit(1)
        assert attr("a") != lit("a")
        assert len({attr("a"), attr("a"), lit(1)}) == 2


class TestComparison:
    def test_concrete_true_false(self):
        assert eq("a", 5).evaluate({"a": 5}) is True
        assert eq("a", 5).evaluate({"a": 6}) is False

    def test_theta_operators(self):
        assert cmp_("a", "<=", 10).evaluate({"a": 3}) is True
        assert cmp_("a", ">", "b").evaluate({"a": 3, "b": 5}) is False

    def test_string_shorthand_builds_attr_refs(self):
        pred = eq("a", "b")
        assert isinstance(pred.left, AttrRef) and isinstance(pred.right, AttrRef)

    def test_module_operand_yields_symbolic_condition(self):
        alpha = aggsum(MIN, [tensor(Var("x"), MConst(MIN, 10))])
        outcome = cmp_("agg", "<=", 15).evaluate({"agg": alpha})
        assert isinstance(outcome, Compare)
        assert outcome.variables == {"x"}

    def test_classifiers(self):
        assert eq("a", "b").is_attribute_equality()
        assert not eq("a", 5).is_attribute_equality()
        assert eq("a", 5).is_constant_equality()
        assert not cmp_("a", "<", 5).is_constant_equality()

    def test_attributes(self):
        assert cmp_("a", "<", "b").attributes() == {"a", "b"}
        assert eq("a", 5).attributes() == {"a"}


class TestConjunction:
    def test_empty_conj_is_true(self):
        assert isinstance(conj(), TruePredicate)
        assert conj().evaluate({}) is True

    def test_single_passes_through(self):
        pred = eq("a", 1)
        assert conj(pred) is pred

    def test_all_concrete(self):
        pred = conj(eq("a", 1), cmp_("b", "<", 5))
        assert pred.evaluate({"a": 1, "b": 3}) is True
        assert pred.evaluate({"a": 2, "b": 3}) is False

    def test_short_circuit_on_false(self):
        pred = conj(eq("a", 99), cmp_("missing", "<", 5))
        # First atom fails; the unresolvable second atom is never touched.
        assert pred.evaluate({"a": 1}) is False

    def test_symbolic_atoms_multiply(self):
        alpha = aggsum(MIN, [tensor(Var("x"), MConst(MIN, 10))])
        beta = aggsum(MIN, [tensor(Var("y"), MConst(MIN, 3))])
        pred = conj(cmp_("f", "<=", 15), cmp_("g", ">=", 1))
        outcome = pred.evaluate({"f": alpha, "g": beta})
        assert isinstance(outcome, Prod)
        assert outcome.variables == {"x", "y"}

    def test_mixed_concrete_and_symbolic(self):
        alpha = aggsum(MIN, [tensor(Var("x"), MConst(MIN, 10))])
        pred = conj(eq("a", 1), cmp_("f", "<=", 15))
        outcome = pred.evaluate({"a": 1, "f": alpha})
        assert isinstance(outcome, Compare)

    def test_nested_conjunctions_flatten(self):
        pred = conj(conj(eq("a", 1), eq("b", 2)), eq("c", 3))
        assert len(pred.atoms()) == 3

    def test_attributes_union(self):
        pred = conj(eq("a", 1), cmp_("b", "<", "c"))
        assert pred.attributes() == {"a", "b", "c"}
