"""Semiring-aware normalisation of expressions.

The smart constructors in :mod:`repro.algebra.expressions` and
:mod:`repro.algebra.semimodule` apply only simplifications valid in *every*
semiring.  During compilation, however, the target semiring is known, which
enables much stronger rewrites — most importantly after a Shannon expansion
step ``Φ|x←s`` substitutes constants into the expression:

* variable-free subexpressions fold to constants
  (``SConst``/``MConst``) by direct evaluation;
* in the **Boolean** semiring, sums absorb on ``⊤`` (``⊤ + Φ = ⊤``) and
  both sums and products are idempotent (``Φ + Φ = Φ``, ``Φ · Φ = Φ``),
  so duplicate children collapse;
* in the **naturals** semiring, constant summands/factors fold
  arithmetically.

These rewrites are what keep the residual expressions of a mutex
decomposition small; without Boolean absorption the Shannon rule would
barely shrink the expression it expands.
"""

from __future__ import annotations

from repro.algebra.bounds import fold_comparison_by_bounds
from repro.algebra.conditions import Compare, compare
from repro.algebra.expressions import (
    ONE,
    Expr,
    Prod,
    SConst,
    SemiringExpr,
    Sum,
    Var,
    ssum,
    sprod,
)
from repro.algebra.semimodule import AggSum, MConst, ModuleExpr, Tensor, aggsum, tensor
from repro.algebra.semiring import Semiring
from repro.errors import AlgebraError

__all__ = ["Normalizer", "normalize"]


class Normalizer:
    """Normalise expressions relative to a fixed target semiring.

    Instances memoise results, which matters during compilation where the
    same subexpressions reappear across Shannon branches.
    """

    def __init__(self, semiring: Semiring):
        self.semiring = semiring
        self._cache: dict[Expr, Expr] = {}

    def __call__(self, expr: Expr) -> Expr:
        cached = self._cache.get(expr)
        if cached is None:
            cached = self._normalize(expr)
            self._cache[expr] = cached
        return cached

    def _normalize(self, expr: Expr) -> Expr:
        if isinstance(expr, (Var, SConst, MConst)):
            return self._fold_const(expr)
        if isinstance(expr, Sum):
            return self._normalize_sum(expr)
        if isinstance(expr, Prod):
            return self._normalize_prod(expr)
        if isinstance(expr, Compare):
            return self._normalize_compare(expr)
        if isinstance(expr, Tensor):
            return self._normalize_tensor(expr)
        if isinstance(expr, AggSum):
            return self._normalize_aggsum(expr)
        raise AlgebraError(f"cannot normalise expression of type {type(expr).__name__}")

    def _fold_const(self, expr: Expr) -> Expr:
        """Canonicalise constants for the target semiring."""
        if isinstance(expr, SConst) and self.semiring.is_boolean:
            return SConst(int(self.semiring.coerce(expr.value)))
        return expr

    def _normalize_sum(self, expr: Sum) -> SemiringExpr:
        semiring = self.semiring
        children = [self(c) for c in expr.children]
        const_acc = semiring.zero
        symbolic: list[SemiringExpr] = []
        seen: set = set()
        for child in children:
            if isinstance(child, SConst):
                const_acc = semiring.add(const_acc, semiring.coerce(child.value))
            elif semiring.is_boolean:
                if child not in seen:  # idempotence: Φ + Φ = Φ
                    seen.add(child)
                    symbolic.append(child)
            else:
                symbolic.append(child)
        if semiring.is_boolean and const_acc:
            return ONE  # absorption: ⊤ + Φ = ⊤
        if const_acc != semiring.zero:
            symbolic.append(SConst(int(const_acc)))
        return ssum(symbolic)

    def _normalize_prod(self, expr: Prod) -> SemiringExpr:
        semiring = self.semiring
        children = [self(c) for c in expr.children]
        const_acc = semiring.one
        symbolic: list[SemiringExpr] = []
        seen: set = set()
        for child in children:
            if isinstance(child, SConst):
                const_acc = semiring.mul(const_acc, semiring.coerce(child.value))
                if const_acc == semiring.zero:
                    return SConst(0)
            elif semiring.is_boolean:
                if child not in seen:  # idempotence: Φ · Φ = Φ
                    seen.add(child)
                    symbolic.append(child)
            else:
                symbolic.append(child)
        if const_acc != semiring.one:
            symbolic.append(SConst(int(const_acc)))
        return sprod(symbolic)

    def _normalize_compare(self, expr: Compare) -> SemiringExpr:
        left = self(expr.left)
        right = self(expr.right)
        folded = compare(left, expr.op, right)
        if isinstance(folded, SConst):
            return self._fold_const(folded)
        if isinstance(folded, Compare) and isinstance(folded.left, ModuleExpr):
            # Early folding by value bounds: after Shannon substitutions
            # the attainable intervals of the two sides may separate, at
            # which point the comparison is decided in every remaining
            # world (the Experiment-E effect).
            decided = fold_comparison_by_bounds(
                folded.left,
                folded.op.symbol,
                folded.right,
                self.semiring.is_boolean,
            )
            if decided is not None:
                return SConst(int(decided))
        return folded

    def _normalize_tensor(self, expr: Tensor) -> ModuleExpr:
        phi = self(expr.phi)
        arg = self(expr.arg)
        if isinstance(phi, SConst) and isinstance(arg, MConst):
            scalar = self.semiring.coerce(phi.value)
            return MConst(arg.monoid, arg.monoid.act(scalar, arg.value, self.semiring))
        if isinstance(phi, SConst):
            scalar = self.semiring.coerce(phi.value)
            if scalar == self.semiring.one:
                return arg
            if scalar == self.semiring.zero:
                return MConst(arg.monoid, arg.monoid.zero)
        return tensor(phi, arg)

    def _normalize_aggsum(self, expr: AggSum) -> ModuleExpr:
        return aggsum(expr.monoid, [self(c) for c in expr.children])


def normalize(expr: Expr, semiring: Semiring) -> Expr:
    """One-shot normalisation; see :class:`Normalizer`."""
    return Normalizer(semiring)(expr)
