"""Tests for Algorithm 1 — including the paper's Figures 5/6 and Example 12."""

import math

import pytest

from repro.algebra.conditions import compare
from repro.algebra.expressions import Var, sprod, ssum
from repro.algebra.monoid import MAX, MIN, SUM
from repro.algebra.parser import parse_expr
from repro.algebra.semimodule import MConst, aggsum, tensor
from repro.algebra.semiring import BOOLEAN, NATURALS
from repro.core.compile import HEURISTICS, Compiler
from repro.core.dtree import MutexNode, PlusNode, TensorNode, TimesNode, VarLeaf
from repro.errors import CompilationError
from repro.prob.distribution import Distribution
from repro.prob.space import ProbabilitySpace
from repro.prob.variables import VariableRegistry


def boolean_compiler(probabilities: dict, **kwargs) -> Compiler:
    reg = VariableRegistry()
    for name, p in probabilities.items():
        reg.bernoulli(name, p)
    return Compiler(reg, BOOLEAN, **kwargs)


class TestIndependenceRules:
    def test_independent_sum_compiles_to_plus(self):
        compiler = boolean_compiler({"a": 0.5, "b": 0.5})
        tree = compiler.compile(Var("a") + Var("b"))
        assert isinstance(tree, PlusNode)
        assert compiler.mutex_nodes_created == 0

    def test_independent_product_compiles_to_times(self):
        compiler = boolean_compiler({"a": 0.5, "b": 0.5, "c": 0.5})
        tree = compiler.compile(sprod([Var("a"), Var("b"), Var("c")]))
        assert isinstance(tree, TimesNode)
        assert compiler.mutex_nodes_created == 0

    def test_read_once_factorisation_avoids_shannon(self):
        # x(y11+y12): connected sum factors by the common variable.
        compiler = boolean_compiler({"x": 0.5, "y1": 0.5, "y2": 0.5})
        expr = Var("x") * Var("y1") + Var("x") * Var("y2")
        tree = compiler.compile(expr)
        assert compiler.mutex_nodes_created == 0
        assert isinstance(tree, TimesNode)

    def test_module_factorisation_example_14(self):
        # x1(y11⊗10 + y12⊗50): tensor node over the common variable.
        compiler = boolean_compiler({"x1": 0.5, "y11": 0.5, "y12": 0.5})
        expr = aggsum(
            SUM,
            [
                tensor(Var("x1") * Var("y11"), MConst(SUM, 10)),
                tensor(Var("x1") * Var("y12"), MConst(SUM, 50)),
            ],
        )
        tree = compiler.compile(expr)
        assert compiler.mutex_nodes_created == 0
        assert isinstance(tree, TensorNode)

    def test_dependent_product_uses_shannon(self):
        compiler = boolean_compiler({"a": 0.5, "b": 0.5, "c": 0.5})
        expr = sprod([ssum([Var("a"), Var("b")]), ssum([Var("a"), Var("c")])])
        compiler.compile(expr)
        assert compiler.mutex_nodes_created >= 1

    def test_variable_free_expression_is_constant_leaf(self):
        compiler = boolean_compiler({})
        tree = compiler.compile(compare(MConst(MIN, 3), "<=", MConst(MIN, 5)))
        assert tree.distribution(compiler.context)[True] == 1.0

    def test_repeated_subexpressions_share_nodes(self):
        compiler = boolean_compiler({"a": 0.5, "b": 0.5, "c": 0.5, "d": 0.5})
        shared = Var("c") * Var("d")
        expr = ssum([Var("a") * shared, Var("b") * shared])
        # Factorisation cannot split cd out as a unit (it extracts single
        # variables), but memoisation still shares the compiled sub-DAG.
        tree = compiler.compile(expr)
        assert tree.dag_size() <= tree.tree_size()


class TestFigure5Example12:
    """The d-tree of Figure 5 and the distributions of Example 12."""

    def setup_registry(self, pa, pb, pc):
        reg = VariableRegistry()
        reg.integer("a", {1: pa, 2: 1 - pa})
        reg.integer("b", {1: pb, 2: 1 - pb})
        reg.integer("c", {1: pc, 2: 1 - pc})
        return reg

    def alpha(self):
        return aggsum(
            SUM,
            [
                tensor(Var("a") * (Var("b") + Var("c")), MConst(SUM, 10)),
                tensor(Var("c"), MConst(SUM, 20)),
            ],
        )

    def test_root_is_mutex_on_c(self):
        reg = self.setup_registry(0.5, 0.5, 0.5)
        compiler = Compiler(reg, NATURALS)
        tree = compiler.compile(self.alpha())
        assert isinstance(tree, MutexNode)
        assert tree.name == "c"
        assert len(tree.branches) == 2

    def test_sum_distribution_matches_paper(self):
        pa, pb, pc = 0.6, 0.3, 0.7
        qa, qb, qc = 1 - pa, 1 - pb, 1 - pc
        reg = self.setup_registry(pa, pb, pc)
        dist = Compiler(reg, NATURALS).distribution(self.alpha())
        expected = Distribution(
            {
                40: pa * pb * pc,
                50: pa * qb * pc,
                60: qa * pb * pc,
                70: pa * pb * qc,
                80: qa * qb * pc + pa * qb * qc,
                100: qa * pb * qc,
                120: qa * qb * qc,
            }
        )
        assert dist.almost_equals(expected)

    def test_min_distribution_is_point_ten(self):
        reg = self.setup_registry(0.6, 0.3, 0.7)
        alpha_min = aggsum(
            MIN,
            [
                tensor(Var("a") * (Var("b") + Var("c")), MConst(MIN, 10)),
                tensor(Var("c"), MConst(MIN, 20)),
            ],
        )
        dist = Compiler(reg, NATURALS).distribution(alpha_min)
        assert dist.almost_equals(Distribution({10: 1.0}))

    def test_boolean_min_distribution_matches_paper(self):
        pa, pb, pc = 0.6, 0.3, 0.7
        qa, qb, qc = 1 - pa, 1 - pb, 1 - pc
        reg = VariableRegistry()
        for name, p in (("a", pa), ("b", pb), ("c", pc)):
            reg.bernoulli(name, p)
        alpha_min = aggsum(
            MIN,
            [
                tensor(Var("a") * (Var("b") + Var("c")), MConst(MIN, 10)),
                tensor(Var("c"), MConst(MIN, 20)),
            ],
        )
        dist = Compiler(reg, BOOLEAN).distribution(alpha_min)
        expected = Distribution(
            {
                10: pa * pb * qc + pa * pc,
                20: qa * pc,
                math.inf: pa * qb * qc + qa * pb * qc + qa * qb * qc,
            }
        )
        assert dist.almost_equals(expected)


class TestFigure6:
    """Compilation of the ⟨Gap⟩ annotation expression of Figure 1e."""

    def test_matches_brute_force(self):
        probs = {
            name: 0.25 + 0.05 * i
            for i, name in enumerate(
                ["x4", "x5", "y41", "y43", "y51", "z1", "z3", "z5"]
            )
        }
        compiler = boolean_compiler(probs)
        expr = parse_expr(
            "x4*y41*(z1+z5)@15 + x4*y43*z3@60 + x5*y51*(z1+z5)@10",
            monoid=MAX,
        )
        reg = compiler.registry
        expected = ProbabilitySpace(reg, BOOLEAN).distribution_of(expr)
        assert compiler.distribution(expr).almost_equals(expected)

    def test_semiring_component_same_shape(self):
        probs = {n: 0.5 for n in ["x4", "x5", "y41", "y43", "y51", "z1", "z3", "z5"]}
        compiler = boolean_compiler(probs)
        phi = parse_expr("x4*y41*(z1+z5) + x4*y43*z3 + x5*y51*(z1+z5)")
        expected = ProbabilitySpace(compiler.registry, BOOLEAN).distribution_of(phi)
        assert compiler.distribution(phi).almost_equals(expected)

    def test_root_mutex_on_most_frequent_variable(self):
        # x4, z1, z5, x5, y51 occur... x4 and x5/z1/z5 tie-break: the
        # paper eliminates x4; our heuristic picks a maximum-occurrence
        # variable (x4 or x5, both occur twice; ties break by name).
        probs = {n: 0.5 for n in ["x4", "x5", "y41", "y43", "y51", "z1", "z3", "z5"]}
        compiler = boolean_compiler(probs)
        expr = parse_expr(
            "x4*y41*(z1+z5)@15 + x4*y43*z3@60 + x5*y51*(z1+z5)@10",
            monoid=MAX,
        )
        tree = compiler.compile(expr)
        assert isinstance(tree, MutexNode)
        counts = {"x4": 2, "x5": 2, "z1": 2, "z5": 2}
        assert tree.name in counts


class TestHeuristics:
    def test_all_heuristics_registered(self):
        assert set(HEURISTICS) == {
            "most-occurrences",
            "fewest-occurrences",
            "lexicographic",
        }

    @pytest.mark.parametrize("name", sorted(HEURISTICS))
    def test_heuristics_agree_on_probability(self, name):
        probs = {f"v{i}": 0.3 + 0.1 * i for i in range(4)}
        expr = parse_expr("(v0+v1)*(v0+v2) + v3*v1")
        reference = None
        compiler = boolean_compiler(probs, heuristic=name)
        p = compiler.probability(expr)
        brute = ProbabilitySpace(compiler.registry, BOOLEAN).probability(expr)
        assert p == pytest.approx(brute)

    def test_unknown_heuristic_rejected(self):
        with pytest.raises(CompilationError, match="unknown heuristic"):
            boolean_compiler({"a": 0.5}, heuristic="random")

    def test_callable_heuristic(self):
        chosen = []

        def pick_first(expr, candidates):
            name = sorted(candidates)[0]
            chosen.append(name)
            return name

        compiler = boolean_compiler({"a": 0.5, "b": 0.5}, heuristic=pick_first)
        expr = parse_expr("(a+b)*(a*b + b)")
        compiler.probability(expr)
        assert chosen  # the custom heuristic was consulted


class TestBudget:
    def test_mutex_budget_enforced(self):
        probs = {f"v{i}": 0.5 for i in range(8)}
        # A highly entangled expression that needs several expansions.
        expr = parse_expr(
            "(v0+v1)*(v0+v2)*(v1+v3)*(v2+v4)*(v3+v5)*(v4+v6)*(v5+v7)*(v6+v7)"
        )
        compiler = boolean_compiler(probs, max_mutex_nodes=1)
        with pytest.raises(CompilationError, match="budget"):
            compiler.compile(expr)


class TestNSemiringCompilation:
    def test_bag_multiplicity_distribution(self):
        reg = VariableRegistry()
        reg.integer("m", {0: 0.2, 1: 0.5, 2: 0.3})
        reg.integer("n", {1: 0.6, 3: 0.4})
        compiler = Compiler(reg, NATURALS)
        expr = Var("m") * Var("n")  # multiplicity of a joined tuple
        expected = ProbabilitySpace(reg, NATURALS).distribution_of(expr)
        assert compiler.distribution(expr).almost_equals(expected)

    def test_probability_defaults_to_semiring_one(self):
        reg = VariableRegistry()
        reg.integer("m", {0: 0.25, 1: 0.75})
        compiler = Compiler(reg, NATURALS)
        assert compiler.probability(Var("m")) == pytest.approx(0.75)
