"""The server write path: ``POST /mutate`` and the TCP ``mutate`` op.

Every test boots a real server on ephemeral ports and compares its
post-mutation answers against a local :class:`Session` oracle that
applied the same mutations to an identically built database — the
multi-tenant freshness guarantee: no tenant ever reads an answer
compiled against a previous database generation.
"""

import asyncio
import json

import pytest

from repro.server import (
    QueryServer,
    ServerClient,
    ServerConfig,
    ServerError,
    demo_database,
    demo_session,
    fingerprint,
)


def run(coro):
    return asyncio.run(coro)


async def booted(**overrides):
    config = ServerConfig(port=0, **overrides)
    server = QueryServer(demo_database(), config)
    await server.start()
    return server


def client_for(server, **kwargs) -> ServerClient:
    host, port = server.http_address
    _, tcp_port = server.tcp_address
    return ServerClient(host, port, tcp_port=tcp_port, **kwargs)


COUNT_SQL = "SELECT COUNT(*) AS n FROM R"
KIND_SQL = "SELECT kind FROM R WHERE kind = 'a'"


def oracle(mutations=()) -> dict:
    """Fingerprints of a local session after applying ``mutations``."""
    session = demo_session()
    for table, action, kwargs in mutations:
        getattr(session.db, action)(table, **kwargs)
    return {sql: fingerprint(session.sql(sql)) for sql in (COUNT_SQL, KIND_SQL)}


class TestHttpMutations:
    def test_probability_update_is_visible_to_all_tenants(self):
        """Warm tenant A, mutate from tenant B, and both tenants' next
        answers must match the mutated oracle — the shared distribution
        cache invalidated by lineage, not by luck."""

        async def scenario():
            server = await booted()
            try:
                async with client_for(server, tenant="a") as a, client_for(
                    server, tenant="b"
                ) as b:
                    before = await a.query(KIND_SQL)
                    mutation = await b.mutate(
                        "R", "update", where={"kind": "a"}, p=0.9
                    )
                    after_a = await a.query(KIND_SQL)
                    after_b = await b.query(KIND_SQL)
                    return before, mutation, after_a, after_b
            finally:
                await server.stop()

        before, mutation, after_a, after_b = run(scenario())
        assert mutation["mutation"]["rows"] >= 1
        expected = oracle(
            [("R", "update", {"where": {"kind": "a"}, "p": 0.9})]
        )[KIND_SQL]
        assert fingerprint(before) == oracle()[KIND_SQL]
        assert fingerprint(before) != expected
        assert fingerprint(after_a) == expected
        assert fingerprint(after_b) == expected

    def test_insert_update_delete_round_trip(self):
        async def scenario():
            server = await booted()
            try:
                async with client_for(server) as c:
                    inserted = await c.mutate(
                        "R", "insert", values=["zz", 70], p=0.5
                    )
                    grown = await c.query(COUNT_SQL)
                    updated = await c.mutate(
                        "R",
                        "update",
                        where={"kind": "zz"},
                        set_values={"value": 80},
                    )
                    deleted = await c.mutate(
                        "R", "delete", where={"kind": "zz"}
                    )
                    restored = await c.query(COUNT_SQL)
                    return inserted, grown, updated, deleted, restored
            finally:
                await server.stop()

        inserted, grown, updated, deleted, restored = run(scenario())
        assert inserted["mutation"]["rows"] == 1
        assert updated["mutation"]["rows"] == 1
        assert deleted["mutation"]["rows"] == 1
        # Generations are strictly monotonic across the three writes.
        generations = [
            step["mutation"]["db_generation"]
            for step in (inserted, updated, deleted)
        ]
        assert generations == sorted(generations)
        assert len(set(generations)) == 3
        expected = oracle(
            [("R", "insert", {"values": ("zz", 70), "p": 0.5})]
        )[COUNT_SQL]
        assert fingerprint(grown) == expected
        # Insert + delete of the same row restores the original answer.
        assert fingerprint(restored) == oracle()[COUNT_SQL]

    def test_validation_errors_reject_without_writing(self):
        async def scenario():
            server = await booted()
            try:
                async with client_for(server) as c:
                    before = await c.stats()
                    failures = []
                    for kwargs in (
                        dict(table="R", action="truncate"),
                        dict(table="R", action="update", where={"kind": "a"}),
                        dict(table="R", action="delete"),
                        dict(table="R", action="insert"),
                    ):
                        try:
                            await c.mutate(
                                kwargs.pop("table"), kwargs.pop("action"),
                                **kwargs,
                            )
                            failures.append("no error")
                        except ServerError as exc:
                            failures.append(str(exc))
                    stats = await c.stats()
                    return failures, before, stats
            finally:
                await server.stop()

        failures, before, stats = run(scenario())
        assert len(failures) == 4
        assert "no error" not in failures
        assert all("ProtocolError" in message for message in failures)
        # Validation failures never touched the database.
        assert stats["database"]["mutations"] == before["database"]["mutations"]
        assert stats["database"]["generation"] == before["database"]["generation"]

    def test_stats_report_generation_and_mutation_feed(self):
        async def scenario():
            server = await booted()
            try:
                async with client_for(server) as c:
                    before = await c.stats()
                    await c.mutate("R", "insert", values=["zz", 70], p=0.5)
                    await c.mutate("R", "delete", where={"kind": "zz"})
                    after = await c.stats()
                    return before, after
            finally:
                await server.stop()

        before, after = run(scenario())
        assert after["database"]["mutations"]["total"] == (
            before["database"]["mutations"]["total"] + 2
        )
        # The insert moves the generation twice (minted variable bumps
        # the registry epoch, the row bumps the table epoch); the delete
        # once.  Strict monotonicity is the contract that matters.
        assert after["database"]["generation"] == (
            before["database"]["generation"] + 3
        )
        assert after["server"]["mutations"] == 2
        assert after["server"]["errors"] == before["server"]["errors"]


class TestTcpMutations:
    def test_tcp_mutate_op_round_trip(self):
        async def scenario():
            server = await booted()
            try:
                host, tcp_port = server.tcp_address
                reader, writer = await asyncio.open_connection(host, tcp_port)
                try:
                    request = {
                        "op": "mutate",
                        "table": "R",
                        "action": "update",
                        "where": {"kind": "a"},
                        "p": 0.9,
                        "tenant": "tcp-writer",
                    }
                    writer.write(json.dumps(request).encode() + b"\n")
                    await writer.drain()
                    response = json.loads(await reader.readline())
                finally:
                    writer.close()
                    await writer.wait_closed()
                async with client_for(server) as c:
                    result = await c.query(KIND_SQL)
                return response, result
            finally:
                await server.stop()

        response, result = run(scenario())
        assert response["ok"] is True
        assert response["mutation"]["rows"] >= 1
        assert response["tenant"] == "tcp-writer"
        expected = oracle(
            [("R", "update", {"where": {"kind": "a"}, "p": 0.9})]
        )[KIND_SQL]
        assert fingerprint(result) == expected

    def test_tcp_rejects_malformed_mutation(self):
        async def scenario():
            server = await booted()
            try:
                host, tcp_port = server.tcp_address
                reader, writer = await asyncio.open_connection(host, tcp_port)
                try:
                    request = {"op": "mutate", "table": "R", "action": "drop"}
                    writer.write(json.dumps(request).encode() + b"\n")
                    await writer.drain()
                    return json.loads(await reader.readline())
                finally:
                    writer.close()
                    await writer.wait_closed()
            finally:
                await server.stop()

        response = run(scenario())
        assert response["ok"] is False
        assert response["error"]["type"] == "ProtocolError"


class TestConcurrentWritesAndReads:
    def test_interleaved_writers_and_readers_stay_consistent(self):
        """Concurrent writers serialise; every reader observes *some*
        prefix of the write sequence, and the final answer equals the
        oracle with all writes applied."""

        async def scenario():
            server = await booted(soft_limit=32, hard_limit=64)
            try:
                async def writer(n):
                    async with client_for(server, tenant=f"w{n}") as c:
                        await c.mutate(
                            "R", "insert", values=[f"w{n}", 10 + n], p=0.5
                        )

                async def reader(n):
                    async with client_for(server, tenant=f"r{n}") as c:
                        return await c.query(COUNT_SQL)

                await asyncio.gather(
                    *(writer(n) for n in range(4)),
                    *(reader(n) for n in range(4)),
                )
                async with client_for(server) as c:
                    final = await c.query(COUNT_SQL)
                    stats = await c.stats()
                return final, stats
            finally:
                await server.stop()

        final, stats = run(scenario())
        mutations = [
            ("R", "insert", {"values": (f"w{n}", 10 + n), "p": 0.5})
            for n in range(4)
        ]
        assert fingerprint(final) == oracle(mutations)[COUNT_SQL]
        assert stats["server"]["mutations"] == 4
        # 16 bootstrap inserts + the 4 concurrent writers.
        assert stats["database"]["mutations"]["insert"] == 20
        assert stats["server"]["errors"] == 0


if __name__ == "__main__":
    raise SystemExit(pytest.main([__file__, "-v"]))
