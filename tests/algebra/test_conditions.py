"""Unit tests for conditional expressions ``[Φ θ Ψ]`` (Equation 2)."""

import pytest

from repro.algebra.conditions import COMPARISON_OPS, Compare, compare
from repro.algebra.expressions import ONE, ZERO, SConst, Var
from repro.algebra.monoid import MIN, SUM
from repro.algebra.semimodule import MConst, tensor
from repro.errors import AlgebraError


class TestComparisonOps:
    def test_all_six_relations_present(self):
        for symbol in ("=", "!=", "<=", ">=", "<", ">"):
            assert symbol in COMPARISON_OPS

    def test_aliases(self):
        assert COMPARISON_OPS["=="] is COMPARISON_OPS["="]
        assert COMPARISON_OPS["<>"] is COMPARISON_OPS["!="]

    def test_semantics(self):
        assert COMPARISON_OPS["<="](3, 5)
        assert not COMPARISON_OPS[">"](3, 5)
        assert COMPARISON_OPS["!="](3, 5)

    def test_negation(self):
        assert COMPARISON_OPS["<="].negation is COMPARISON_OPS[">"]
        assert COMPARISON_OPS["="].negation is COMPARISON_OPS["!="]


class TestCompareConstruction:
    def test_symbolic_comparison_stays_symbolic(self):
        cond = compare(Var("x"), "<=", 5)
        assert isinstance(cond, Compare)
        assert cond.variables == frozenset({"x"})

    def test_constant_fold_semiring(self):
        assert compare(SConst(3), "<=", SConst(5)) == ONE
        assert compare(SConst(7), "<=", SConst(5)) == ZERO

    def test_constant_fold_module(self):
        assert compare(MConst(MIN, 3), "<", MConst(MIN, 5)) == ONE

    def test_int_coerces_to_module_side(self):
        alpha = tensor(Var("x"), MConst(MIN, 10))
        cond = compare(alpha, "<=", 15)
        assert isinstance(cond.right, MConst)
        assert cond.right.monoid == MIN

    def test_module_vs_semiring_expression_rejected(self):
        with pytest.raises(AlgebraError, match="cannot compare"):
            compare(tensor(Var("x"), MConst(SUM, 1)), "<=", Var("y"))

    def test_unknown_operator_rejected(self):
        with pytest.raises(AlgebraError, match="unknown comparison"):
            compare(Var("x"), "~", 1)

    def test_group_guard_shape(self):
        # The [Σ Φ ≠ 0_K] guards produced by the $ rewriting.
        guard = compare(Var("x") + Var("y"), "!=", ZERO)
        assert isinstance(guard, Compare)
        assert guard.op.symbol == "!="

    def test_substitution_folds(self):
        cond = compare(Var("x"), "=", SConst(1))
        assert cond.substitute({"x": ONE}) == ONE
        assert cond.substitute({"x": ZERO}) == ZERO

    def test_compare_is_semiring_expression(self):
        cond = compare(Var("x"), "<=", 5)
        product = cond * Var("y")
        assert product.variables == frozenset({"x", "y"})

    def test_equality_and_hash(self):
        c1 = compare(Var("x"), "<=", 5)
        c2 = compare(Var("x"), "<=", 5)
        c3 = compare(Var("x"), "<", 5)
        assert c1 == c2 and hash(c1) == hash(c2)
        assert c1 != c3

    def test_repr_shows_operator(self):
        assert "<=" in repr(compare(Var("x"), "<=", 5))
