"""The pool watchdog: hung workers are detected, killed and survived."""

import multiprocessing
import time

import pytest

from repro.parallel import pool
from repro.parallel.pool import SharedPool
from repro.resilience import Deadline, deadline_scope


def _hang_worker(context, payload):
    """Wedges forever inside a pool worker; answers instantly inline."""
    if multiprocessing.parent_process() is not None:
        time.sleep(60.0)
    return payload * 2


def _good_worker(context, payload):
    return payload + context


pytestmark = pytest.mark.skipif(
    not pool.fork_available(), reason="fork-based pools unavailable"
)


class TestWatchdogTimeout:
    def test_explicit_task_timeout_wins_when_smaller(self):
        handle = SharedPool(_good_worker, 0, 2, task_timeout=0.2)
        assert handle._watchdog_timeout() == 0.2
        with deadline_scope(Deadline(100.0)):
            assert handle._watchdog_timeout() == 0.2

    def test_ambient_deadline_bounds_an_unarmed_pool(self):
        handle = SharedPool(_good_worker, 0, 2)
        assert handle._watchdog_timeout() is None
        with deadline_scope(Deadline(1.0)):
            timeout = handle._watchdog_timeout()
            # remaining (<= 1s) + the 2s grace period
            assert 1.0 < timeout <= 3.0 + 0.1

    def test_module_default_arms_every_pool(self, monkeypatch):
        monkeypatch.setattr(pool, "DEFAULT_TASK_TIMEOUT", 5.0)
        handle = SharedPool(_good_worker, 0, 2)
        assert handle._watchdog_timeout() == 5.0


class TestHungWorkerRecovery:
    def test_hang_is_detected_killed_and_rerun_inline(self):
        with SharedPool(_hang_worker, None, 2, task_timeout=0.5) as handle:
            start = time.perf_counter()
            results, info = handle.run([1, 2, 3])
            elapsed = time.perf_counter() - start
        # Detected within the timeout (plus kill/fork slack), nowhere
        # near the worker's 60s sleep — and the answers are correct.
        assert elapsed < 10.0
        assert results == [2, 4, 6]
        assert info["parallel_fallback"] == "worker_hang"
        assert info["workers"] == 1

    def test_one_rebuild_then_permanent_fallback(self):
        with SharedPool(_hang_worker, None, 2, task_timeout=0.5) as handle:
            _, first = handle.run([1, 2])
            assert first["parallel_fallback"] == "worker_hang"
            assert handle._fallback_reason is None  # one rebuild allowed
            _, second = handle.run([3, 4])
            assert second["parallel_fallback"] == "worker_hang"
            assert handle._fallback_reason == "worker_hang"  # now permanent
            start = time.perf_counter()
            results, third = handle.run([5, 6])
            # Permanent fallback: straight inline, no watchdog wait.
            assert time.perf_counter() - start < 0.3
            assert results == [10, 12]
            assert third["parallel_fallback"] == "worker_hang"

    def test_healthy_pool_is_untouched_by_the_watchdog(self):
        with SharedPool(_good_worker, 10, 2, task_timeout=5.0) as handle:
            results, info = handle.run([1, 2, 3, 4])
        assert results == [11, 12, 13, 14]
        assert "parallel_fallback" not in info
        assert info["workers"] == 2

    def test_execute_accepts_task_timeout(self):
        results, info = pool.execute(
            _hang_worker, None, [7, 8], 2, task_timeout=0.5
        )
        assert results == [14, 16]
        assert info["parallel_fallback"] == "worker_hang"
