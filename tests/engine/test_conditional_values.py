"""Tests for presence-conditioned aggregate value distributions."""

import pytest

from repro.algebra.expressions import Var
from repro.algebra.semiring import BOOLEAN
from repro.db.pvc_table import PVCDatabase
from repro.engine.naive import NaiveEngine
from repro.engine.sprout import SproutEngine
from repro.prob.variables import VariableRegistry
from repro.query.ast import AggSpec, GroupAgg, relation


def simple_db():
    reg = VariableRegistry()
    db = PVCDatabase(registry=reg, semiring=BOOLEAN)
    r = db.create_table("R", ["g", "v"])
    reg.bernoulli("x", 0.5)
    reg.bernoulli("y", 0.25)
    r.add((1, 10), Var("x"))
    r.add((1, 20), Var("y"))
    return db


class TestConditionalValueDistribution:
    def test_conditional_sum_distribution(self):
        db = simple_db()
        query = GroupAgg(relation("R"), ["g"], [AggSpec.of("s", "SUM", "v")])
        row = SproutEngine(db).run(query).rows[0]
        dist = row.conditional_value_distribution("s")
        # P(present) = 1 - 0.5·0.75 = 0.625
        present = 0.625
        assert dist[10] == pytest.approx(0.5 * 0.75 / present)
        assert dist[20] == pytest.approx(0.5 * 0.25 / present)
        assert dist[30] == pytest.approx(0.5 * 0.25 / present)
        assert 0 not in dist
        assert dist.total() == pytest.approx(1.0)

    def test_matches_naive_conditional(self):
        db = simple_db()
        query = GroupAgg(relation("R"), ["g"], [AggSpec.of("s", "SUM", "v")])
        row = SproutEngine(db).run(query).rows[0]
        dist = row.conditional_value_distribution("s")
        naive = NaiveEngine(db).tuple_probabilities(query)
        present = sum(naive.values())
        for (group, value), p in naive.items():
            assert dist[value] == pytest.approx(p / present)

    def test_expected_value(self):
        db = simple_db()
        query = GroupAgg(relation("R"), ["g"], [AggSpec.of("s", "SUM", "v")])
        row = SproutEngine(db).run(query).rows[0]
        assert row.expected_value("s") == pytest.approx(
            row.conditional_value_distribution("s").expectation()
        )

    def test_constant_attribute_is_point(self):
        db = simple_db()
        row = SproutEngine(db).run(relation("R")).rows[0]
        dist = row.conditional_value_distribution("v")
        assert dist[10] == 1.0

    def test_global_aggregate_is_always_present(self):
        db = simple_db()
        query = GroupAgg(relation("R"), [], [AggSpec.of("s", "SUM", "v")])
        row = SproutEngine(db).run(query).rows[0]
        dist = row.conditional_value_distribution("s")
        # annotation is 1_K: conditioning is a no-op, 0 stays possible
        assert dist[0] == pytest.approx(0.5 * 0.75)
