"""Sensor-network monitoring: aggregation over noisy measurements.

A building has temperature sensors whose readings are uncertain in two
ways the paper's model captures naturally:

* *detection uncertainty* — a sensor may have been offline, so its reading
  row exists only with some probability (tuple-independent rows);
* *reading ambiguity* — a flaky sensor reports one of several candidate
  values, exactly one of which is real (a BID block over a block variable,
  encoded with conditional annotations ``[x_b = i]``).

We then ask per-floor questions: the distribution of the number of live
readings (COUNT), the probability that the maximum temperature exceeds an
alert threshold (MAX with a HAVING-style condition), and the joint
behaviour of the two.

BID blocks need bag semantics (the block variables range over 0..k), so
the whole database runs under the naturals semiring — demonstrating
Table 1's probabilistic-bag row.

Run with::

    python examples/sensor_network.py
"""

from repro import (
    NATURALS,
    AggSpec,
    GroupAgg,
    MonteCarloEngine,
    NaiveEngine,
    PVCDatabase,
    Project,
    Select,
    SproutEngine,
    VariableRegistry,
    bid_table,
    cmp_,
    relation,
    tuple_independent_table,
)

ALERT_THRESHOLD = 30


def build_database() -> PVCDatabase:
    registry = VariableRegistry()
    db = PVCDatabase(registry=registry, semiring=NATURALS)

    # Reliable sensors: the reading is correct when the sensor was online.
    # (floor, sensor, temperature) with per-row probability of being live.
    steady = tuple_independent_table(
        ["floor", "sensor", "temp"],
        [
            ((1, "s11", 21), 0.95),
            ((1, "s12", 24), 0.9),
            ((2, "s21", 28), 0.85),
            ((2, "s22", 26), 0.9),
        ],
        registry,
        prefix="live",
    )
    db.add_table("steady", steady)

    # Flaky sensors: each block lists mutually exclusive candidate
    # readings (at most one is real; the remainder is "no reading").
    flaky = bid_table(
        ["floor", "sensor", "temp"],
        [
            [((1, "f1", 23), 0.5), ((1, "f1", 35), 0.3)],   # 20% offline
            [((2, "f2", 29), 0.6), ((2, "f2", 33), 0.4)],
        ],
        registry,
        prefix="blk",
    )
    db.add_table("flaky", flaky)
    return db


def main():
    db = build_database()
    engine = SproutEngine(db)

    from repro import Union

    readings = Union(relation("steady"), relation("flaky"))

    # 1. COUNT of live readings per floor.
    counts = GroupAgg(readings, ["floor"], [AggSpec.of("n", "COUNT")])
    print("Distribution of the number of live readings per floor:")
    for row in engine.run(counts):
        floor = row.values[0]
        dist = row.value_distribution("n")
        line = ", ".join(f"{v}:{p:.3f}" for v, p in sorted(dist.items()))
        print(f"  floor {floor}: {line}")

    # 2. Overheating alert: P(MAX(temp) > threshold) per floor.
    hottest = GroupAgg(readings, ["floor"], [AggSpec.of("hot", "MAX", "temp")])
    alert = Project(
        Select(hottest, cmp_("hot", ">", ALERT_THRESHOLD)), ["floor"]
    )
    print(f"\nP(max temperature > {ALERT_THRESHOLD}) per floor:")
    for row in engine.run(alert):
        print(f"  floor {row.values[0]}: {row.probability():.4f}")

    # 3. Cross-check against the exact possible-worlds oracle and a
    #    Monte-Carlo estimate (the baselines the paper compares against).
    exact = NaiveEngine(db).tuple_probabilities(alert)
    sampled = MonteCarloEngine(db, seed=1).tuple_probabilities(alert, 2000)
    print("\nFloor-1 alert probability, three ways:")
    key = (1,)
    compiled = {
        tuple(row.values): row.probability() for row in engine.run(alert)
    }
    print(f"  compiled d-tree : {compiled.get(key, 0.0):.4f}")
    print(f"  possible worlds : {exact.get(key, 0.0):.4f}")
    print(f"  Monte Carlo(2k) : {sampled.get(key, 0.0):.4f}")


if __name__ == "__main__":
    main()
