"""The query server end to end: conformance, backpressure, robustness.

All tests boot a real :class:`~repro.server.QueryServer` on ephemeral
localhost ports and drive it with real :class:`ServerClient` sockets.
Tests are written as sync functions running their own ``asyncio.run``
event loop (no pytest-asyncio dependency in the container).
"""

import asyncio
import json

import pytest

from repro.server import (
    DEMO_QUERIES,
    ProtocolError,
    QueryServer,
    ServerClient,
    ServerConfig,
    ServerError,
    ServerOverloaded,
    ServerOverloadedError,
    demo_database,
    demo_session,
    fingerprint,
)

#: Deterministic queries (no Monte-Carlo) for byte-identity conformance.
ZOO = DEMO_QUERIES


def run(coro):
    return asyncio.run(coro)


async def booted(**overrides):
    """A started server over the standard demo database (port 0)."""
    config = ServerConfig(port=0, **overrides)
    server = QueryServer(demo_database(), config)
    await server.start()
    return server


def client_for(server, **kwargs) -> ServerClient:
    host, port = server.http_address
    _, tcp_port = server.tcp_address
    return ServerClient(host, port, tcp_port=tcp_port, **kwargs)


def oracle_fingerprints() -> dict:
    """Serial Session answers over an identically built database."""
    session = demo_session()
    return {sql: fingerprint(session.sql(sql)) for sql in ZOO}


class TestConcurrentConformance:
    def test_eight_concurrent_clients_match_serial_oracle(self):
        """The acceptance criterion: N >= 8 async clients, each running
        the full query zoo as its own tenant, produce results
        byte-identical (fingerprint: values, interval endpoints, stats
        modulo timing/caching counters) to a fresh serial Session — and
        the shared statement cache records cross-tenant hits."""
        expected = oracle_fingerprints()

        async def scenario():
            server = await booted(soft_limit=64, hard_limit=256)
            try:
                async def one_client(n):
                    async with client_for(server, tenant=f"tenant-{n}") as c:
                        results = {}
                        # stagger starting points so clients interleave
                        for i in range(len(ZOO)):
                            sql = ZOO[(n + i) % len(ZOO)]
                            results[sql] = await c.query(sql)
                        return results

                all_results = await asyncio.gather(
                    *(one_client(n) for n in range(8))
                )
                async with client_for(server) as c:
                    stats = await c.stats()
                return all_results, stats
            finally:
                await server.stop()

        all_results, stats = run(scenario())
        for results in all_results:
            assert set(results) == set(expected)
            for sql, remote in results.items():
                assert fingerprint(remote) == expected[sql], sql
        # 8 tenants x 7 statements over 7 distinct texts: at least the
        # 7 x 7 re-issues must be cross-tenant statement-cache hits.
        assert stats["statement_cache"]["hits"] >= 49
        assert stats["statement_cache"]["misses"] == len(ZOO)
        assert stats["plan_cache"]["hits"] > 0
        assert stats["server"]["completed"] == 8 * len(ZOO)
        assert stats["server"]["errors"] == 0

    def test_tcp_protocol_matches_http(self):
        expected = oracle_fingerprints()

        async def scenario():
            server = await booted()
            try:
                async with client_for(server) as c:
                    http_result = await c.query(ZOO[3])
                    tcp_result = await c.tcp_query(ZOO[3])
                    return http_result, tcp_result
            finally:
                await server.stop()

        http_result, tcp_result = run(scenario())
        assert fingerprint(http_result) == expected[ZOO[3]]
        assert fingerprint(tcp_result) == expected[ZOO[3]]

    def test_montecarlo_seeded_tenants_are_reproducible(self):
        """Sampling engines hold RNG state per session; two fresh tenants
        with the same seed must agree with each other (and a local
        Session) on the same seeded run."""
        async def scenario():
            server = await booted(seed=123)
            try:
                async with client_for(server) as c:
                    a = await c.query(ZOO[1], tenant="mc-a", engine="montecarlo")
                    b = await c.query(ZOO[1], tenant="mc-b", engine="montecarlo")
                    return a, b
            finally:
                await server.stop()

        a, b = run(scenario())
        assert fingerprint(a) == fingerprint(b)


class TestBackpressure:
    def test_soft_limit_degrades_to_sound_intervals(self):
        """With soft_limit=0 every request degrades: answers become
        budgeted anytime intervals that still *contain* the exact
        probability — degraded, never wrong."""
        exact = {}
        session = demo_session()
        sql = ZOO[1]
        for row in session.sql(sql).rows:
            exact[row.values] = row.probability().value

        async def scenario():
            server = await booted(soft_limit=0, hard_limit=64)
            try:
                async with client_for(server) as c:
                    result = await c.query(sql)
                    stats = await c.stats()
                    return result, stats
            finally:
                await server.stop()

        result, stats = run(scenario())
        assert result.degraded
        assert result.engine in ("approx", "sprout")
        assert set(exact) == {row.values for row in result.rows}
        for row in result.rows:
            p = row.probability
            assert p.low - 1e-9 <= exact[row.values] <= p.high + 1e-9
        assert stats["server"]["degraded"] >= 1

    def test_degraded_montecarlo_intent_stays_sampling(self):
        async def scenario():
            server = await booted(soft_limit=0, hard_limit=64, seed=5)
            try:
                async with client_for(server) as c:
                    return await c.query(
                        ZOO[1], engine="montecarlo", samples=100000
                    )
            finally:
                await server.stop()

        result = run(scenario())
        assert result.degraded
        assert result.engine == "montecarlo"
        # the shed budget caps the requested 100k samples
        assert result.stats["samples"] <= ServerConfig().shed_budget

    def test_hard_limit_sheds_with_retry_after(self):
        async def scenario():
            server = await booted(
                soft_limit=0, hard_limit=0, retry_after=1.5
            )
            try:
                async with client_for(server) as c:
                    with pytest.raises(ServerOverloaded) as excinfo:
                        await c.query(ZOO[0])
                    # the server survives shedding: health + later success
                    health = await c.healthz()
                    stats = await c.stats()
                    return excinfo.value, health, stats
            finally:
                await server.stop()

        error, health, stats = run(scenario())
        assert error.retry_after == 1.5
        assert health["status"] == "ok"
        assert stats["server"]["shed"] == 1

    def test_burst_cannot_overshoot_hard_limit(self):
        """Twelve execute() coroutines fired in one burst against
        hard_limit=2: the in-flight slot is claimed synchronously with
        the admission check, so at most two are admitted regardless of
        how the burst interleaves with executor offloads (previously
        the count was read before an await and the whole burst got in)."""
        async def scenario():
            server = await booted(soft_limit=0, hard_limit=2)
            try:
                results = await asyncio.gather(
                    *(server.execute({"sql": ZOO[0], "tenant": f"burst-{n}"})
                      for n in range(12)),
                    return_exceptions=True,
                )
                return results, server.stats()
            finally:
                await server.stop()

        results, stats = run(scenario())
        shed = [r for r in results if isinstance(r, ServerOverloadedError)]
        answered = [r for r in results if isinstance(r, dict)]
        assert len(answered) + len(shed) == 12
        assert len(answered) <= 2
        assert len(shed) >= 10
        assert stats["server"]["shed"] == len(shed)
        assert stats["server"]["inflight"] == 0

    def test_recovers_after_shedding(self):
        """A server that shed under a tiny hard limit still serves
        correct answers afterwards (concurrent burst, then a check)."""
        expected = oracle_fingerprints()

        async def scenario():
            server = await booted(soft_limit=1, hard_limit=2)
            try:
                async def attempt(n):
                    async with client_for(server, tenant=f"burst-{n}") as c:
                        try:
                            return await c.query(ZOO[5])
                        except ServerOverloaded as exc:
                            return exc

                burst = await asyncio.gather(*(attempt(n) for n in range(12)))
                async with client_for(server) as c:
                    after = await c.query(ZOO[0], tenant="after")
                return burst, after
            finally:
                await server.stop()

        burst, after = run(scenario())
        answered = [r for r in burst if not isinstance(r, ServerOverloaded)]
        assert answered, "some burst requests should be admitted"
        for result in answered:
            if not result.degraded:
                assert fingerprint(result) == expected[ZOO[5]]
        assert fingerprint(after) == expected[ZOO[0]]


class TestStreaming:
    def test_stream_snapshots_tighten_and_stay_sound(self):
        session = demo_session()
        sql = ZOO[1]  # projection: identical row shape across modes
        exact = {
            row.values: row.probability().value
            for row in session.sql(sql).rows
        }

        async def scenario():
            server = await booted(seed=9)
            try:
                async with client_for(server) as c:
                    snapshots = []
                    async for snap in c.stream(
                        sql,
                        spec={"mode": "sample", "epsilon": 0.05,
                              "budget": 30000},
                    ):
                        snapshots.append(snap)
                    return snapshots
            finally:
                await server.stop()

        snapshots = run(scenario())
        assert len(snapshots) >= 2, "expected multiple refinement snapshots"
        max_widths = [
            max(row.probability.width for row in snap.rows)
            for snap in snapshots
        ]
        assert max_widths == sorted(max_widths, reverse=True)
        assert max_widths[-1] <= 0.05 + 1e-9
        # (ε, δ) confidence intervals: check the final bracket with a
        # generous slack for the documented per-interval failure rate.
        final = snapshots[-1]
        for remote_row in final.rows:
            p = remote_row.probability
            truth = exact[remote_row.values]
            assert p.low - 0.25 <= truth <= p.high + 0.25

    def test_abandoned_stream_does_not_wedge_the_server(self):
        """A client that disconnects mid-stream must not leave the
        producer thread blocked — the server keeps serving and stop()
        terminates (this deadlocked before the thread-queue hand-off)."""
        async def scenario():
            server = await booted(seed=9)
            try:
                reader, writer = await asyncio.open_connection(
                    *server.tcp_address
                )
                writer.write(json.dumps({
                    "op": "stream", "sql": ZOO[1],
                    "spec": {"mode": "sample", "epsilon": 0.001,
                             "budget": 200000},
                }).encode() + b"\n")
                await writer.drain()
                await reader.readline()  # first snapshot arrives...
                writer.close()           # ...then the client vanishes
                # the server must still answer other tenants promptly
                async with client_for(server) as c:
                    result = await c.query(ZOO[0], tenant="other")
                    # and the *stream's own* tenant must be serviceable
                    # again: the abandoned stream's cleanup stops the
                    # producer thread *before* releasing the tenant
                    # lock, so this cannot race run_iter on the shared
                    # Session — it just waits its turn.
                    same = await c.query(ZOO[0])  # tenant "default"
                return result, same
            finally:
                await asyncio.wait_for(server.stop(), timeout=30)

        result, same = run(scenario())
        assert len(result.rows) > 0
        assert len(same.rows) > 0

    def test_stream_rejects_samples_field(self):
        async def scenario():
            server = await booted()
            try:
                reader, writer = await asyncio.open_connection(
                    *server.tcp_address
                )
                writer.write(json.dumps({
                    "op": "stream", "sql": ZOO[0], "samples": 10,
                }).encode() + b"\n")
                await writer.drain()
                line = json.loads(await reader.readline())
                writer.close()
                return line
            finally:
                await server.stop()

        line = run(scenario())
        assert line["ok"] is False
        assert line["error"]["type"] == "ProtocolError"


class TestRobustness:
    def test_malformed_requests_get_structured_errors(self):
        """Bad JSON, missing fields, bad SQL, unknown ops: every failure
        is a structured error response and the server keeps serving."""
        async def scenario():
            server = await booted()
            try:
                host, port = server.http_address
                outcomes = {}

                # 1. invalid JSON body over raw HTTP
                reader, writer = await asyncio.open_connection(host, port)
                body = b"{not json"
                writer.write(
                    b"POST /query HTTP/1.1\r\nHost: x\r\n"
                    b"Content-Length: %d\r\n\r\n%s" % (len(body), body)
                )
                await writer.drain()
                status = (await reader.readline()).split()[1]
                outcomes["bad_json"] = int(status)
                writer.close()

                # 2-5. structured client errors via the client
                async with client_for(server) as c:
                    for name, kwargs in {
                        "missing_sql": {"sql": "   "},
                        "bad_sql": {"sql": "SELECT FROM WHERE"},
                        "unknown_relation": {"sql": "SELECT a FROM nope"},
                    }.items():
                        try:
                            await c.query(**kwargs)
                            outcomes[name] = None  # pragma: no cover
                        except ServerError as exc:
                            outcomes[name] = exc.error["type"]
                    try:
                        await c.query(ZOO[0], engine="quantum")
                        outcomes["bad_engine"] = None  # pragma: no cover
                    except ServerError as exc:
                        outcomes["bad_engine"] = exc.error["type"]
                    try:
                        await c.query(ZOO[0], spec={"mode": "psychic"})
                        outcomes["bad_spec"] = None  # pragma: no cover
                    except ServerError as exc:
                        outcomes["bad_spec"] = exc.error["type"]

                    # 6. unknown TCP op
                    reader, writer = await asyncio.open_connection(
                        *server.tcp_address
                    )
                    writer.write(b'{"op": "explode"}\n')
                    writer.write(b"also not json\n")
                    # the same connection must still answer a good query
                    writer.write(json.dumps(
                        {"op": "query", "sql": ZOO[0]}
                    ).encode() + b"\n")
                    await writer.drain()
                    op_err = json.loads(await reader.readline())
                    json_err = json.loads(await reader.readline())
                    good = json.loads(await reader.readline())
                    writer.close()

                    # the event loop survived everything above
                    result = await c.query(ZOO[0])
                    stats = await c.stats()
                return outcomes, op_err, json_err, good, result, stats
            finally:
                await server.stop()

        outcomes, op_err, json_err, good, result, stats = run(scenario())
        assert outcomes["bad_json"] == 400
        assert outcomes["missing_sql"] == "ProtocolError"
        assert outcomes["bad_sql"] == "ParseError"
        assert outcomes["unknown_relation"] == "QueryValidationError"
        assert outcomes["bad_engine"] == "ProtocolError"
        assert outcomes["bad_spec"] == "QueryValidationError"
        assert op_err["ok"] is False
        assert json_err["ok"] is False
        assert good["ok"] is True and len(good["result"]["rows"]) > 0
        assert len(result.rows) > 0
        assert stats["server"]["errors"] >= 6

    def test_overlong_request_line_gets_400(self):
        """A request line past the stream's line limit must come back as
        a structured 400, not a silently dropped connection plus an
        unhandled-exception log."""
        async def scenario():
            server = await booted()
            try:
                host, port = server.http_address
                reader, writer = await asyncio.open_connection(host, port)
                writer.write(b"GET /" + b"a" * 66000 + b" HTTP/1.1\r\n\r\n")
                await writer.drain()
                status_line = await reader.readline()
                writer.close()
                return status_line
            finally:
                await server.stop()

        status_line = run(scenario())
        assert status_line, "server dropped the connection without a response"
        assert int(status_line.split()[1]) == 400

    def test_unknown_route_and_method(self):
        async def scenario():
            server = await booted()
            try:
                host, port = server.http_address

                async def raw(request):
                    reader, writer = await asyncio.open_connection(host, port)
                    writer.write(request)
                    await writer.drain()
                    status = int((await reader.readline()).split()[1])
                    writer.close()
                    return status

                not_found = await raw(
                    b"GET /nope HTTP/1.1\r\nHost: x\r\n\r\n"
                )
                wrong_method = await raw(
                    b"GET /query HTTP/1.1\r\nHost: x\r\n\r\n"
                )
                return not_found, wrong_method
            finally:
                await server.stop()

        not_found, wrong_method = run(scenario())
        assert not_found == 404
        assert wrong_method == 405

    def test_tenant_isolation_of_unknown_fields(self):
        async def scenario():
            server = await booted()
            try:
                host, port = server.http_address
                reader, writer = await asyncio.open_connection(host, port)
                body = json.dumps({"sql": ZOO[0], "bogus": 1}).encode()
                writer.write(
                    b"POST /query HTTP/1.1\r\nHost: x\r\n"
                    b"Content-Length: %d\r\n\r\n%s" % (len(body), body)
                )
                await writer.drain()
                status = int((await reader.readline()).split()[1])
                writer.close()
                return status
            finally:
                await server.stop()

        assert run(scenario()) == 400


class TestTenantBound:
    def test_idle_tenants_are_lru_evicted(self):
        """Cycling tenant names must not grow server state without
        bound: past max_tenants the LRU idle tenant (and its lock) is
        evicted, and every request still gets a correct answer."""
        async def scenario():
            server = await booted(max_tenants=2)
            try:
                async with client_for(server) as c:
                    for n in range(5):
                        result = await c.query(ZOO[0], tenant=f"cycler-{n}")
                        assert len(result.rows) > 0
                    return await c.stats()
            finally:
                await server.stop()

        stats = run(scenario())
        assert stats["server"]["tenants"] <= 2
        assert stats["server"]["tenants_evicted"] == 3
        assert stats["server"]["completed"] == 5
        assert stats["server"]["errors"] == 0

    def test_new_tenant_sheds_when_every_tenant_is_busy(self):
        """With max_tenants=1 and that one tenant pinned by a live
        stream, a second tenant cannot evict it and is shed with the
        structured overload error instead."""
        async def scenario():
            server = await booted(seed=9, max_tenants=1)
            try:
                reader, writer = await asyncio.open_connection(
                    *server.tcp_address
                )
                writer.write(json.dumps({
                    "op": "stream", "sql": ZOO[1], "tenant": "pinned",
                    "spec": {"mode": "sample", "epsilon": 0.001,
                             "budget": 200000},
                }).encode() + b"\n")
                await writer.drain()
                await reader.readline()  # stream running: 'pinned' is busy
                async with client_for(server) as c:
                    with pytest.raises(ServerOverloaded):
                        await c.query(ZOO[0], tenant="someone-else")
                writer.close()
                return True
            finally:
                await asyncio.wait_for(server.stop(), timeout=30)

        assert run(scenario())


class TestServerConfig:
    def test_limit_validation(self):
        with pytest.raises(Exception):
            ServerConfig(soft_limit=8, hard_limit=4)
        with pytest.raises(Exception):
            ServerConfig(threads=0)
        with pytest.raises(Exception):
            ServerConfig(shed_budget=0)
        with pytest.raises(Exception):
            ServerConfig(max_tenants=0)

    def test_double_start_rejected(self):
        async def scenario():
            server = await booted()
            try:
                with pytest.raises(ProtocolError):
                    await server.start()
            finally:
                await server.stop()

        run(scenario())

    def test_stats_payload_is_json_encodable(self):
        async def scenario():
            server = await booted()
            try:
                async with client_for(server) as c:
                    await c.query(ZOO[0])
                    return await c.stats()
            finally:
                await server.stop()

        stats = run(scenario())
        json.dumps(stats)
        assert stats["database"]["tables"]["R"] == 8
        assert stats["config"]["soft_limit"] == ServerConfig().soft_limit
