"""Shared fixtures: small probabilistic databases and registries.

The central testing strategy of this suite is *oracle equivalence*: every
probability produced by the compiled pipeline must equal the value obtained
by brute-force possible-world enumeration.  The fixtures here provide small
databases (few variables) for which enumeration is cheap.
"""

from __future__ import annotations

import pytest

from repro.algebra import BOOLEAN, Var
from repro.db import PVCDatabase
from repro.prob import VariableRegistry


@pytest.fixture
def registry() -> VariableRegistry:
    """Five Boolean variables with assorted probabilities."""
    reg = VariableRegistry()
    for name, p in [("a", 0.3), ("b", 0.5), ("c", 0.7), ("d", 0.2), ("e", 0.9)]:
        reg.bernoulli(name, p)
    return reg


@pytest.fixture
def int_registry() -> VariableRegistry:
    """Three integer-valued (bag semantics) variables."""
    reg = VariableRegistry()
    reg.integer("m", {0: 0.2, 1: 0.5, 2: 0.3})
    reg.integer("n", {1: 0.6, 3: 0.4})
    reg.integer("k", {0: 0.5, 2: 0.5})
    return reg


def build_figure1_database(small: bool = True) -> PVCDatabase:
    """The running example of Figure 1 (optionally trimmed for enumeration).

    The full database has 19 variables (2^19 worlds); the trimmed variant
    keeps 11, which the brute-force oracle enumerates quickly.
    """
    reg = VariableRegistry()
    db = PVCDatabase(registry=reg, semiring=BOOLEAN)

    suppliers = [(1, "M&S"), (2, "M&S"), (4, "Gap")]
    if not small:
        suppliers = [(1, "M&S"), (2, "M&S"), (3, "M&S"), (4, "Gap"), (5, "Gap")]
    s = db.create_table("S", ["sid", "shop"])
    for sid, shop in suppliers:
        reg.bernoulli(f"x{sid}", 0.5)
        s.add((sid, shop), Var(f"x{sid}"))

    listings = [(1, 1, 10), (1, 2, 50), (2, 2, 60), (4, 1, 15)]
    if not small:
        listings = [
            (1, 1, 10), (1, 2, 50), (2, 1, 11), (2, 2, 60),
            (3, 3, 15), (3, 4, 40), (4, 1, 15), (4, 3, 60), (5, 1, 10),
        ]
    ps = db.create_table("PS", ["psid", "pid", "price"])
    for sid, pid, price in listings:
        name = f"y{sid}{pid}"
        reg.bernoulli(name, 0.6)
        ps.add((sid, pid, price), Var(name))

    products1 = [(1, 4), (2, 8)] if small else [(1, 4), (2, 8), (3, 7), (4, 6)]
    p1 = db.create_table("P1", ["ppid", "weight"])
    for pid, weight in products1:
        name = f"z{pid}"
        reg.bernoulli(name, 0.7)
        p1.add((pid, weight), Var(name))

    p2 = db.create_table("P2", ["ppid", "weight"])
    reg.bernoulli("z5", 0.5)
    p2.add((1, 5), Var("z5"))
    return db


@pytest.fixture
def figure1_db() -> PVCDatabase:
    """Trimmed Figure-1 database (enumeration-friendly)."""
    return build_figure1_database(small=True)


@pytest.fixture
def figure1_db_full() -> PVCDatabase:
    """The complete Figure-1 database of the paper."""
    return build_figure1_database(small=False)
