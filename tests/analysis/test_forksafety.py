"""Fixture corpus for the fork/pickle-safety checker."""

from __future__ import annotations

import json

import pytest

from repro.analysis.checkers.forksafety import ForkSafetyChecker

CHECKERS = [ForkSafetyChecker()]


def rule_ids(result):
    return [finding.rule_id for finding in result.findings]


class TestWorker:
    def test_flags_lambda_worker(self, analyze):
        result = analyze(
            """
    from repro.parallel import pool as parallel_pool

    def run(payloads):
        return parallel_pool.execute(lambda p: p, (), payloads, 2)
    """,
            CHECKERS,
        )
        assert rule_ids(result) == ["fork-unpicklable-worker"]

    def test_flags_nested_function_worker(self, analyze):
        result = analyze(
            """
    from repro.parallel import pool as parallel_pool

    def run(payloads):
        def worker(payload):
            return payload
        return parallel_pool.execute(worker, (), payloads, 2)
    """,
            CHECKERS,
        )
        assert rule_ids(result) == ["fork-unpicklable-worker"]
        assert "nested function" in result.findings[0].message

    def test_flags_bound_method_worker(self, analyze):
        result = analyze(
            """
    from repro.parallel import pool as parallel_pool

    class Engine:
        def evaluate(self, payload):
            return payload

        def run(self, payloads):
            return parallel_pool.execute(self.evaluate, (), payloads, 2)
    """,
            CHECKERS,
        )
        assert rule_ids(result) == ["fork-unpicklable-worker"]
        assert "bound method" in result.findings[0].message

    def test_passes_module_level_worker(self, analyze):
        result = analyze(
            """
    from repro.parallel import pool as parallel_pool

    def worker(payload):
        return payload

    def run(payloads):
        return parallel_pool.execute(worker, (), payloads, 2)
    """,
            CHECKERS,
        )
        assert result.clean

    def test_each_site_reported_exactly_once(self, analyze):
        # The call sits under two statement layers (try/if); the scope
        # walker must still visit it once, not once per ancestor.
        result = analyze(
            """
    from repro.parallel import pool as parallel_pool

    def run(payloads, shared):
        try:
            if shared is None:
                def worker(payload):
                    return payload
                return parallel_pool.execute(worker, (), payloads, 2)
        except OSError:
            return None
    """,
            CHECKERS,
        )
        assert rule_ids(result) == ["fork-unpicklable-worker"]


class TestPayload:
    def test_flags_deadline_in_context(self, analyze):
        result = analyze(
            """
    from repro.parallel import pool as parallel_pool
    from repro.resilience.deadlines import Deadline

    def worker(payload):
        return payload

    def run(payloads, seconds):
        context = (42, Deadline.after(seconds))
        return parallel_pool.execute(worker, context, payloads, 2)
    """,
            CHECKERS,
        )
        assert rule_ids(result) == ["fork-unpicklable-payload"]
        assert "Deadline" in result.findings[0].message

    def test_flags_threading_lock_through_alias(self, analyze):
        result = analyze(
            """
    import threading
    from repro.parallel import pool as parallel_pool

    def worker(payload):
        return payload

    def run(payloads):
        guard = threading.Lock()
        context = (guard,)
        return parallel_pool.execute(worker, context, payloads, 2)
    """,
            CHECKERS,
        )
        assert rule_ids(result) == ["fork-unpicklable-payload"]

    def test_flags_lambda_in_payloads(self, analyze):
        result = analyze(
            """
    from repro.parallel import pool as parallel_pool

    def worker(payload):
        return payload

    def run():
        return parallel_pool.execute(worker, (), [lambda: 1], 2)
    """,
            CHECKERS,
        )
        assert rule_ids(result) == ["fork-unpicklable-payload"]

    def test_sharedpool_context_is_checked(self, analyze):
        result = analyze(
            """
    from repro.parallel.pool import SharedPool

    def worker(payload):
        return payload

    def run(registry):
        return SharedPool(worker, (registry, open("log")), 2)
    """,
            CHECKERS,
        )
        assert rule_ids(result) == ["fork-unpicklable-payload"]
        assert "open" in result.findings[0].message

    def test_passes_plain_picklable_context(self, analyze):
        result = analyze(
            """
    from repro.parallel import pool as parallel_pool

    def worker(payload):
        return payload

    def run(registry, semiring, payloads, workers):
        context = (registry, semiring, ("a", 1))
        return parallel_pool.execute(worker, context, payloads, workers)
    """,
            CHECKERS,
        )
        assert result.clean

    def test_reassigned_alias_is_not_resolved(self, analyze):
        # Two assignments to the same name defeat single-assignment
        # dataflow; the checker must stay silent, not guess.
        result = analyze(
            """
    import threading
    from repro.parallel import pool as parallel_pool

    def worker(payload):
        return payload

    def run(payloads, safe):
        context = (threading.Lock(),)
        context = safe
        return parallel_pool.execute(worker, context, payloads, 2)
    """,
            CHECKERS,
        )
        assert result.clean


class TestHygiene:
    def test_suppression(self, analyze):
        result = analyze(
            """
    from repro.parallel import pool as parallel_pool

    def run(payloads):
        # repro: allow(fork-unpicklable-worker)
        return parallel_pool.execute(lambda p: p, (), payloads, 2)
    """,
            CHECKERS,
        )
        assert result.clean
        assert [f.rule_id for f in result.suppressed] == [
            "fork-unpicklable-worker"
        ]

    def test_baseline(self, analyze, tmp_path):
        source = """
    from repro.parallel import pool as parallel_pool

    def run(payloads):
        return parallel_pool.execute(lambda p: p, (), payloads, 2)
    """
        flagged = analyze(source, CHECKERS)
        assert len(flagged.findings) == 1
        baseline_path = tmp_path / "baseline.json"
        baseline_path.write_text(
            json.dumps(
                {
                    "findings": [
                        {
                            "file": flagged.findings[0].file,
                            "rule": flagged.findings[0].rule_id,
                            "message": flagged.findings[0].message,
                            "why": "fixture",
                        }
                    ]
                }
            )
        )
        result = analyze(source, CHECKERS, baseline=str(baseline_path))
        assert result.clean
        assert len(result.baselined) == 1


class TestShippedPoolSites:
    def test_real_pool_call_sites_are_clean(self):
        """The actual engine pool sites pass (workers are module-level)."""
        from pathlib import Path

        from repro.analysis import analyze_paths

        src = Path(__file__).resolve().parents[2] / "src" / "repro"
        result = analyze_paths(
            [str(src / "engine"), str(src / "parallel")], checkers=CHECKERS
        )
        assert result.clean, [f.render() for f in result.findings]


if __name__ == "__main__":
    raise SystemExit(pytest.main([__file__, "-v"]))
