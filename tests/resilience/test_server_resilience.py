"""Server-stack resilience: client retries, graceful drain, wire policy.

Same conventions as ``tests/server/test_server.py``: real servers on
ephemeral localhost ports, sync tests running their own ``asyncio.run``
loop (no pytest-asyncio in the container).
"""

import asyncio

import pytest

from repro.errors import QueryValidationError
from repro.resilience import FaultPlan, fault_plan
from repro.resilience.faults import clear_plan
from repro.server import (
    QueryServer,
    RetryPolicy,
    ServerClient,
    ServerConfig,
    ServerError,
    ServerOverloaded,
    demo_database,
)

SQL = "SELECT kind FROM R WHERE value >= 20"


@pytest.fixture(autouse=True)
def no_leaked_plan():
    clear_plan()
    yield
    clear_plan()


def run(coro):
    return asyncio.run(coro)


async def booted(**overrides):
    config = ServerConfig(port=0, **overrides)
    server = QueryServer(demo_database(), config)
    await server.start()
    return server


def client_for(server, **kwargs) -> ServerClient:
    host, port = server.http_address
    _, tcp_port = server.tcp_address
    return ServerClient(host, port, tcp_port=tcp_port, **kwargs)


#: A fast schedule for tests: retries land within milliseconds.
FAST_RETRY = RetryPolicy(
    max_attempts=5, base_delay=0.01, max_delay=0.05, jitter=0.1
)


class TestRetryPolicy:
    def test_validation(self):
        with pytest.raises(QueryValidationError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(QueryValidationError):
            RetryPolicy(base_delay=-1.0)
        with pytest.raises(QueryValidationError):
            RetryPolicy(multiplier=0.5)
        with pytest.raises(QueryValidationError):
            RetryPolicy(jitter=-0.1)
        with pytest.raises(QueryValidationError):
            RetryPolicy(max_elapsed=0.0)

    def test_backoff_grows_and_caps(self):
        import random

        policy = RetryPolicy(
            base_delay=0.1, multiplier=2.0, max_delay=0.5, jitter=0.0
        )
        rng = random.Random(0)
        delays = [policy.backoff(n, rng) for n in range(5)]
        assert delays == [0.1, 0.2, 0.4, 0.5, 0.5]

    def test_jitter_is_seed_deterministic(self):
        import random

        policy = RetryPolicy(jitter=0.5)
        first = [policy.backoff(n, random.Random(7)) for n in range(3)]
        second = [policy.backoff(n, random.Random(7)) for n in range(3)]
        assert first == second


class TestRetryUntilSuccess:
    def test_http_retry_survives_transient_io_fault(self):
        """The io fault heals after two hits; the retrying client never
        sees it, the bare client fails on the first attempt."""

        async def scenario():
            server = await booted()
            try:
                plan = FaultPlan().add(
                    "server.http.request", "io", times=2
                )
                with fault_plan(plan):
                    async with client_for(server) as bare:
                        with pytest.raises(ServerError) as err:
                            await bare.query(SQL)
                        assert err.value.error["type"] == "ConnectionError"
                    async with client_for(server, retry=FAST_RETRY) as c:
                        result = await c.query(SQL)
                assert len(result.rows) > 0
                assert plan.fires == {"server.http.request": 2}
            finally:
                await server.stop()

        run(scenario())

    def test_tcp_retry_survives_transient_io_fault(self):
        async def scenario():
            server = await booted()
            try:
                plan = FaultPlan().add("server.tcp.line", "io", times=1)
                with fault_plan(plan):
                    async with client_for(server, retry=FAST_RETRY) as c:
                        result = await c.tcp_query(SQL)
                assert len(result.rows) > 0
            finally:
                await server.stop()

        run(scenario())

    def test_retry_until_shedding_server_recovers(self):
        """A client retrying against a fully loaded server succeeds once
        capacity frees up, honouring the server's Retry-After."""

        async def scenario():
            server = await booted(retry_after=0.05)
            try:
                # Saturate admission artificially, then free it shortly.
                server._inflight = server.config.hard_limit

                async def recover():
                    await asyncio.sleep(0.15)
                    server._inflight = 0

                recovery = asyncio.ensure_future(recover())
                async with client_for(server, retry=FAST_RETRY) as c:
                    result = await c.query(SQL)
                await recovery
                assert len(result.rows) > 0
                assert server._counters["shed"] >= 1
            finally:
                await server.stop()

        run(scenario())

    def test_deterministic_errors_never_retry(self):
        async def scenario():
            server = await booted()
            try:
                async with client_for(server, retry=FAST_RETRY) as c:
                    with pytest.raises(ServerError):
                        await c.query("SELECT nope FROM missing_table")
                # One request, one error: no retry storm on bad SQL.
                assert server._counters["requests"] == 1
            finally:
                await server.stop()

        run(scenario())

    def test_attempt_budget_is_capped(self):
        async def scenario():
            server = await booted()
            try:
                policy = RetryPolicy(
                    max_attempts=3, base_delay=0.001, jitter=0.0
                )
                plan = FaultPlan().add(
                    "server.http.request", "io", times=None
                )
                with fault_plan(plan):
                    async with client_for(server, retry=policy) as c:
                        with pytest.raises(ServerError):
                            await c.query(SQL)
                assert plan.fires == {"server.http.request": 3}
            finally:
                await server.stop()

        run(scenario())


class TestTimeoutPolicyOverWire:
    def test_partial_policy_returns_degraded_intervals(self):
        async def scenario():
            server = await booted()
            try:
                plan = FaultPlan().add(
                    "engine.sprout.row", "slow", delay=0.005, times=None
                )
                with fault_plan(plan):
                    async with client_for(server) as c:
                        result = await c.query(
                            SQL, engine="sprout", time_limit=0.01
                        )
                assert result.stats["deadline_hit"] is True
                assert any(r.probability.width == 1.0 for r in result.rows)
            finally:
                await server.stop()

        run(scenario())

    def test_raise_policy_maps_to_structured_error(self):
        async def scenario():
            server = await booted()
            try:
                plan = FaultPlan().add(
                    "engine.sprout.row", "slow", delay=0.005, times=None
                )
                with fault_plan(plan):
                    async with client_for(server) as c:
                        with pytest.raises(ServerError) as err:
                            await c.query(
                                SQL,
                                engine="sprout",
                                time_limit=0.01,
                                on_timeout="raise",
                            )
                assert err.value.error["type"] == "QueryTimeoutError"
            finally:
                await server.stop()

        run(scenario())


class TestGracefulDrain:
    def test_inflight_completes_and_new_arrivals_shed(self):
        async def scenario():
            server = await booted(drain_timeout=10.0)
            slow = client_for(server)
            probe = client_for(server)
            try:
                # Open the probe's keep-alive connection before the
                # listeners close (healthz bypasses admission control).
                await probe.healthz()
                # An in-flight request that runs ~50ms on the executor.
                plan = FaultPlan().add(
                    "engine.approx.round", "slow", delay=0.05, times=None
                )
                with fault_plan(plan):
                    inflight = asyncio.ensure_future(
                        slow.query(
                            SQL,
                            engine="approx",
                            mode="approx",
                            epsilon=1e-9,
                            time_limit=0.4,
                        )
                    )
                    for _ in range(200):
                        if server._inflight:
                            break
                        await asyncio.sleep(0.005)
                    assert server._inflight == 1
                    stopping = asyncio.ensure_future(server.stop())
                    await asyncio.sleep(0.02)
                    assert server._draining
                    # A new arrival on the existing connection: shed.
                    with pytest.raises(ServerOverloaded):
                        await probe.query(SQL)
                    # The admitted request still completes normally.
                    result = await inflight
                    assert len(result.rows) > 0
                    await stopping
                assert server._counters["drain_abandoned"] == 0
            finally:
                await slow.close()
                await probe.close()
                await server.stop()

        run(scenario())

    def test_drain_abandons_stragglers_past_the_window(self):
        async def scenario():
            server = await booted(drain_timeout=0.05)
            client = client_for(server)
            try:
                plan = FaultPlan().add(
                    "engine.approx.round", "slow", delay=0.4, times=None
                )
                with fault_plan(plan):
                    inflight = asyncio.ensure_future(
                        client.query(
                            SQL,
                            engine="approx",
                            mode="approx",
                            epsilon=1e-9,
                            time_limit=0.6,
                        )
                    )
                    for _ in range(200):
                        if server._inflight:
                            break
                        await asyncio.sleep(0.005)
                    await server.stop()
                    assert server._counters["drain_abandoned"] == 1
                    # The straggler still finishes on its own schedule.
                    result = await inflight
                    assert len(result.rows) > 0
            finally:
                await client.close()

        run(scenario())

    def test_stats_expose_draining_flag(self):
        async def scenario():
            server = await booted()
            assert server.stats()["server"]["draining"] is False
            await server.stop()
            assert server.stats()["server"]["draining"] is False

        run(scenario())


class TestCodecFaultPoint:
    def test_encode_fault_is_a_structured_500(self):
        async def scenario():
            server = await booted()
            try:
                plan = FaultPlan().add("server.codec.encode", "io", times=1)
                with fault_plan(plan):
                    async with client_for(server, retry=FAST_RETRY) as c:
                        result = await c.query(SQL)
                assert len(result.rows) > 0
                assert plan.fires == {"server.codec.encode": 1}
            finally:
                await server.stop()

        run(scenario())
