"""Export of decomposition trees to Graphviz DOT.

Renders a d-tree (DAG) in the style of the paper's Figures 5 and 6:
inner nodes labelled ⊕, ⊙, ⊗, [θ], ⊔ₓ; leaves labelled with variables or
constants; mutex edges labelled with the eliminated value and its
probability.  Shared sub-DAGs (from compiler memoisation) are rendered
once, with multiple incoming edges.

Usage::

    tree = Compiler(registry).compile(expr)
    print(to_dot(tree))            # pipe into `dot -Tsvg`
"""

from __future__ import annotations

from repro.core.dtree import (
    CompareNode,
    ConstLeaf,
    DTree,
    MPlusNode,
    MutexNode,
    PlusNode,
    TensorNode,
    TimesNode,
    VarLeaf,
)

__all__ = ["to_dot"]


def _escape(text: str) -> str:
    return text.replace("\\", "\\\\").replace('"', '\\"')


def _node_label(node: DTree) -> str:
    if isinstance(node, VarLeaf):
        return node.name
    if isinstance(node, ConstLeaf):
        return repr(node.value)
    if isinstance(node, PlusNode):
        return "⊕"
    if isinstance(node, TimesNode):
        return "⊙"
    if isinstance(node, MPlusNode):
        return f"⊕ {node.monoid.name}"
    if isinstance(node, TensorNode):
        return "⊗"
    if isinstance(node, CompareNode):
        return f"[{node.op.symbol}]"
    if isinstance(node, MutexNode):
        return f"⊔ {node.name}"
    return node.tag


def _node_shape(node: DTree) -> str:
    if isinstance(node, (VarLeaf, ConstLeaf)):
        return "box"
    if isinstance(node, MutexNode):
        return "diamond"
    return "circle"


def to_dot(tree: DTree, graph_name: str = "dtree") -> str:
    """Render the d-tree DAG as a Graphviz DOT document."""
    lines = [
        f"digraph {graph_name} {{",
        "  node [fontname=\"Helvetica\"];",
    ]
    ids: dict[int, str] = {}
    for index, node in enumerate(tree.iter_unique()):
        ids[id(node)] = f"n{index}"
    for node in tree.iter_unique():
        node_id = ids[id(node)]
        label = _escape(_node_label(node))
        shape = _node_shape(node)
        lines.append(f'  {node_id} [label="{label}", shape={shape}];')
        if isinstance(node, MutexNode):
            for value, probability, child in node.branches:
                edge_label = _escape(f"{node.name}←{value!r} ({probability:g})")
                lines.append(
                    f'  {node_id} -> {ids[id(child)]} [label="{edge_label}"];'
                )
        else:
            for child in node.children:
                lines.append(f"  {node_id} -> {ids[id(child)]};")
    lines.append("}")
    return "\n".join(lines)
