"""Quickstart: probabilistic aggregation in five minutes.

A tiny product catalogue where each item's availability is uncertain.
We ask: what is the distribution of the total price of available items,
and what is the probability that the cheapest available item costs at
most 100?

Run with::

    python examples/quickstart.py
"""

from repro import (
    BOOLEAN,
    AggSpec,
    GroupAgg,
    PVCDatabase,
    Project,
    Select,
    SproutEngine,
    Var,
    VariableRegistry,
    cmp_,
    lit,
    relation,
)


def main():
    # 1. Declare independent Boolean random variables: "is this tuple in
    #    the database?"  (tuple-independent probabilistic table).
    registry = VariableRegistry()
    db = PVCDatabase(registry=registry, semiring=BOOLEAN)

    items = db.create_table("items", ["name", "category", "price"])
    catalogue = [
        ("inkjet printer", "printer", 99, 0.7),
        ("laser printer", "printer", 349, 0.4),
        ("ultrabook", "laptop", 1199, 0.8),
        ("netbook", "laptop", 249, 0.9),
        ("workstation", "laptop", 1999, 0.2),
    ]
    for i, (name, category, price, probability) in enumerate(catalogue):
        variable = f"x{i}"
        registry.bernoulli(variable, probability)
        items.add((name, category, price), Var(variable))

    engine = SproutEngine(db)

    # 2. SUM aggregate: distribution of the total price of available items.
    total_query = GroupAgg(
        relation("items"), [], [AggSpec.of("total", "SUM", "price")]
    )
    result = engine.run(total_query)
    row = result.rows[0]
    print("Distribution of SUM(price) over available items:")
    for value, probability in sorted(row.value_distribution("total").items()):
        print(f"  total = {value:>5}:  {probability:.4f}")

    # 3. Per-category MIN with a threshold: which categories offer an
    #    available item for at most 300, and how likely?
    cheapest = GroupAgg(
        relation("items"), ["category"], [AggSpec.of("cheapest", "MIN", "price")]
    )
    affordable = Project(
        Select(cheapest, cmp_("cheapest", "<=", lit(300))), ["category"]
    )
    print("\nP(category has an available item ≤ 300):")
    for row in engine.run(affordable):
        print(f"  {row.values[0]:<8} {row.probability():.4f}")

    # 4. Peek under the hood: the symbolic annotation and its d-tree.
    table = engine.rewrite(affordable)
    from repro import Compiler

    compiler = Compiler(registry, BOOLEAN)
    first = table.rows[0]
    print(f"\nSymbolic annotation of {first.values}:")
    print(f"  Φ = {first.annotation!r}")
    print("Decomposition tree:")
    print(compiler.compile(first.annotation).pretty("  "))


if __name__ == "__main__":
    main()
