"""Codegen kernel verifier.

:mod:`repro.codegen.emit` lowers physical plans to Python source; this
checker re-parses that source and *proves* the invariants the rest of
the system leans on, for every plan in a differential corpus
(:mod:`repro.analysis.corpus`) covering each fused operator in both
built-in semirings:

``kernel-world-read``
    ``_world`` may be read only as the first argument of the ``_table``
    / ``_index`` runtime helpers, and every table so read inside a
    statics block ``bK`` must be listed in the kernel's ``block_scans``
    metadata for ``bK``.  That metadata is exactly what
    :class:`~repro.codegen.binding.BoundPlan` uses to decide a block is
    world-invariant and hoistable — an unlisted read would make a
    "hoisted" block silently depend on the world.

``kernel-temp-reuse``
    Every statics/CSE temp follows the single guard shape: exactly one
    ``_st.get('<site>')`` load, immediately guarded by ``if <tmp> is
    None:``, with the temp re-assigned only inside that guard and all
    other uses after it.  (This is the "assigned exactly once before
    all uses" contract for ``(shared xN)`` CSE temps: one compute, many
    reads.)

``kernel-name-collision``
    No name the kernel binds may collide with its parameters
    (``_world``, ``_st``, ``_trace``, ``_ckd``), the runtime globals
    (``_table``, ``_index``, ``_MX``), or the bound constants
    (``_kN``): a collision would shadow the runtime out from under
    later blocks.

``kernel-free-variable``
    Def-before-use: every name the kernel reads is a parameter, a
    runtime global, a bound constant, a whitelisted builtin, or was
    assigned earlier in the kernel.  A free variable would resolve
    against whatever leaked into the exec namespace.

``kernel-statics-mismatch``
    The metadata and the source agree on the statics layout (same site
    keys), and every key a :class:`BoundPlan` actually hoists is a
    declared site — a key the kernel never reads would be dead weight
    shipped to every worker; a missing declaration would defeat
    hoisting.

``kernel-compile-error``
    The emitted source must parse and compile at all.

The checker runs at project scope (it needs no source modules — its
input is the *emitted artifact*); :func:`verify_kernel_source` is the
importable core, so tests can tamper with emitted source and watch the
specific invariant trip.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Iterator

from repro.analysis.findings import Finding
from repro.analysis.runner import AnalysisContext, BaseChecker

__all__ = [
    "KernelChecker",
    "KernelMeta",
    "meta_for",
    "verify_kernel",
    "verify_kernel_source",
]

KERNEL_PARAMS = ("_world", "_st", "_trace", "_ckd")
RUNTIME_GLOBALS = ("_table", "_index", "_MX")
#: Builtins the emitter legitimately references.
ALLOWED_BUILTINS = frozenset({"min", "max", "isinstance"})


@dataclass
class KernelMeta:
    """The slice of compiled-plan metadata the verifier checks against."""

    block_scans: dict[str, tuple[str, ...]]
    scan_names: tuple[str, ...]
    consts: tuple[str, ...]
    block_keys: tuple[str, ...]
    index_keys: tuple[str, ...]


def meta_for(compiled) -> KernelMeta:
    """Extract a :class:`KernelMeta` from a ``CompiledPlan``."""
    return KernelMeta(
        block_scans=dict(compiled.block_scans),
        scan_names=tuple(compiled.scan_names),
        consts=tuple(compiled.consts),
        block_keys=tuple(key for key, *_ in compiled.block_sites),
        index_keys=tuple(key for key, *_ in compiled.index_sites),
    )


@dataclass
class _Site:
    key: str
    temp: str
    line: int
    guard: ast.If | None = None


class _KernelAuditor:
    def __init__(self, meta: KernelMeta, origin: str):
        self.meta = meta
        self.origin = origin
        self.findings: list[Finding] = []
        self.sites: list[_Site] = []
        #: temp name -> its site (for reuse checks)
        self.temp_sites: dict[str, _Site] = {}

    def finding(self, line: int, rule: str, message: str) -> None:
        self.findings.append(
            Finding(
                file=self.origin,
                line=line,
                rule_id=rule,
                severity="error",
                message=message,
            )
        )

    # -- structure: statics loads and their guards ------------------------

    @staticmethod
    def _st_load(statement: ast.stmt) -> tuple[str, str] | None:
        """``(temp, key)`` when ``statement`` is ``tmp = _st.get('key')``."""
        if not isinstance(statement, ast.Assign):
            return None
        if len(statement.targets) != 1 or not isinstance(
            statement.targets[0], ast.Name
        ):
            return None
        value = statement.value
        if (
            isinstance(value, ast.Call)
            and isinstance(value.func, ast.Attribute)
            and value.func.attr == "get"
            and isinstance(value.func.value, ast.Name)
            and value.func.value.id == "_st"
            and len(value.args) == 1
            and isinstance(value.args[0], ast.Constant)
            and isinstance(value.args[0].value, str)
        ):
            return statement.targets[0].id, value.args[0].value
        return None

    @staticmethod
    def _is_guard(statement: ast.stmt, temp: str) -> bool:
        return (
            isinstance(statement, ast.If)
            and isinstance(statement.test, ast.Compare)
            and isinstance(statement.test.left, ast.Name)
            and statement.test.left.id == temp
            and len(statement.test.ops) == 1
            and isinstance(statement.test.ops[0], ast.Is)
            and isinstance(statement.test.comparators[0], ast.Constant)
            and statement.test.comparators[0].value is None
            and not statement.orelse
        )

    def walk_body(self, body: list[ast.stmt], blocks: tuple[str, ...]) -> None:
        index = 0
        while index < len(body):
            statement = body[index]
            load = self._st_load(statement)
            if load is not None:
                temp, key = load
                site = _Site(key, temp, statement.lineno)
                self.sites.append(site)
                if temp in self.temp_sites:
                    self.finding(
                        statement.lineno,
                        "kernel-temp-reuse",
                        f"temp {temp!r} is loaded from _st twice "
                        f"(sites {self.temp_sites[temp].key!r} and "
                        f"{key!r}); each CSE temp must have exactly one "
                        f"statics site",
                    )
                else:
                    self.temp_sites[temp] = site
                guard = body[index + 1] if index + 1 < len(body) else None
                if guard is not None and self._is_guard(guard, temp):
                    site.guard = guard
                    inner = blocks
                    if key.startswith("b"):
                        inner = blocks + (key,)
                    self.walk_body(guard.body, inner)
                    index += 2
                    continue
                self.finding(
                    statement.lineno,
                    "kernel-temp-reuse",
                    f"statics load of site {key!r} into {temp!r} is not "
                    f"immediately guarded by 'if {temp} is None:'",
                )
                index += 1
                continue
            self.check_statement(statement, blocks)
            for child_body in self._child_bodies(statement):
                self.walk_body(child_body, blocks)
            index += 1

    @staticmethod
    def _child_bodies(statement: ast.stmt) -> list[list[ast.stmt]]:
        bodies = []
        for attr in ("body", "orelse", "finalbody"):
            child = getattr(statement, attr, None)
            if child:
                bodies.append(child)
        for handler in getattr(statement, "handlers", ()) or ():
            bodies.append(handler.body)
        return bodies

    # -- per-statement expression checks ----------------------------------

    def check_statement(self, statement: ast.stmt, blocks: tuple[str, ...]) -> None:
        for node in ast.iter_child_nodes(statement):
            if isinstance(node, ast.expr):
                self.check_expr(node, blocks)

    def check_expr(self, expr: ast.expr, blocks: tuple[str, ...]) -> None:
        allowed_world: set[int] = set()
        for node in ast.walk(expr):
            if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
                if node.func.id in ("_table", "_index"):
                    if node.args and isinstance(node.args[0], ast.Name):
                        if node.args[0].id == "_world":
                            allowed_world.add(id(node.args[0]))
                    self._check_table_read(node, blocks)
        for node in ast.walk(expr):
            if (
                isinstance(node, ast.Name)
                and node.id == "_world"
                and id(node) not in allowed_world
            ):
                self.finding(
                    node.lineno,
                    "kernel-world-read",
                    "_world may only be passed to _table/_index; any "
                    "other read makes the block world-dependent behind "
                    "the statics layout's back",
                )

    def _check_table_read(self, call: ast.Call, blocks: tuple[str, ...]) -> None:
        if len(call.args) < 2 or not (
            isinstance(call.args[1], ast.Constant)
            and isinstance(call.args[1].value, str)
        ):
            self.finding(
                call.lineno,
                "kernel-world-read",
                f"{call.func.id} called with a non-literal table name",  # type: ignore[union-attr]
            )
            return
        name = call.args[1].value
        if name not in self.meta.scan_names:
            self.finding(
                call.lineno,
                "kernel-world-read",
                f"table {name!r} is read from _world but is not in the "
                f"kernel's scan_names metadata",
            )
            return
        if blocks:
            scope = self.meta.block_scans.get(blocks[-1])
            if scope is not None and name not in scope:
                self.finding(
                    call.lineno,
                    "kernel-world-read",
                    f"block {blocks[-1]!r} reads table {name!r} but its "
                    f"block_scans scope only declares "
                    f"{tuple(sorted(scope))!r}; hoisting decisions would "
                    f"be wrong",
                )

    # -- temp discipline over the whole kernel ----------------------------

    def check_temp_discipline(self, fn: ast.FunctionDef) -> None:
        # One load per *block* (CSE) site: a ``bK`` block is computed
        # exactly once by construction.  Table/index slots (``t:``/
        # ``i:``) may legitimately be loaded once per scan occurrence —
        # a union scanning R twice loads ``t:R`` into two independent
        # temps, each with its own guard.
        seen_keys: dict[str, _Site] = {}
        for site in self.sites:
            if not site.key.startswith("b"):
                continue
            if site.key in seen_keys:
                self.finding(
                    site.line,
                    "kernel-temp-reuse",
                    f"statics site {site.key!r} is loaded more than once; "
                    f"each CSE block must have exactly one load",
                )
            else:
                seen_keys[site.key] = site
        for site in self.sites:
            if site.guard is None:
                continue
            guard_span = (site.guard.lineno, _last_line(site.guard))
            for node in ast.walk(fn):
                if not (
                    isinstance(node, ast.Name) and node.id == site.temp
                ):
                    continue
                inside = guard_span[0] <= node.lineno <= guard_span[1]
                if isinstance(node.ctx, ast.Store):
                    if node.lineno != site.line and not inside:
                        self.finding(
                            node.lineno,
                            "kernel-temp-reuse",
                            f"CSE temp {site.temp!r} (site {site.key!r}) "
                            f"is re-assigned outside its statics guard; "
                            f"the temp must be computed exactly once",
                        )
                elif isinstance(node.ctx, ast.Load):
                    if node.lineno < site.line:
                        self.finding(
                            node.lineno,
                            "kernel-temp-reuse",
                            f"CSE temp {site.temp!r} (site {site.key!r}) "
                            f"is read before its statics load on line "
                            f"{site.line}",
                        )

    # -- collisions and free variables ------------------------------------

    def check_names(self, fn: ast.FunctionDef) -> None:
        params = tuple(arg.arg for arg in fn.args.args)
        if params != KERNEL_PARAMS:
            self.finding(
                fn.lineno,
                "kernel-name-collision",
                f"kernel signature is {params!r}, expected "
                f"{KERNEL_PARAMS!r}",
            )
        reserved = set(KERNEL_PARAMS) | set(RUNTIME_GLOBALS) | set(
            self.meta.consts
        )
        allowed = reserved | ALLOWED_BUILTINS
        defined: set[str] = set(KERNEL_PARAMS)
        for statement in fn.body:
            self._flow(statement, defined, reserved, allowed)

    def _flow(
        self,
        statement: ast.stmt,
        defined: set[str],
        reserved: set[str],
        allowed: set[str],
    ) -> None:
        def check_loads(node: ast.AST) -> None:
            for sub in ast.walk(node):
                if isinstance(sub, ast.Name) and isinstance(
                    sub.ctx, ast.Load
                ):
                    if sub.id not in defined and sub.id not in allowed:
                        self.finding(
                            sub.lineno,
                            "kernel-free-variable",
                            f"name {sub.id!r} is read before any "
                            f"assignment and is neither a parameter, a "
                            f"runtime global, a bound constant, nor a "
                            f"whitelisted builtin",
                        )

        def define(target: ast.expr) -> None:
            for sub in ast.walk(target):
                if isinstance(sub, ast.Name) and isinstance(
                    sub.ctx, ast.Store
                ):
                    if sub.id in reserved:
                        self.finding(
                            sub.lineno,
                            "kernel-name-collision",
                            f"kernel assigns to {sub.id!r}, which "
                            f"collides with a runtime binding "
                            f"(parameters, kernel globals, or bound "
                            f"constants)",
                        )
                    defined.add(sub.id)

        if isinstance(statement, ast.Assign):
            check_loads(statement.value)
            for target in statement.targets:
                # subscript/attribute stores *read* their base first
                if not isinstance(target, ast.Name):
                    check_loads(target)
                define(target)
        elif isinstance(statement, ast.AugAssign):
            check_loads(statement.value)
            check_loads(statement.target)
            define(statement.target)
        elif isinstance(statement, (ast.For, ast.AsyncFor)):
            check_loads(statement.iter)
            define(statement.target)
            for child in statement.body + statement.orelse:
                self._flow(child, defined, reserved, allowed)
        elif isinstance(statement, (ast.If, ast.While)):
            check_loads(statement.test)
            for child in statement.body + statement.orelse:
                self._flow(child, defined, reserved, allowed)
        elif isinstance(statement, ast.Return):
            if statement.value is not None:
                check_loads(statement.value)
        elif isinstance(statement, ast.Expr):
            check_loads(statement.value)
        elif isinstance(statement, ast.Delete):
            for target in statement.targets:
                check_loads(target)
        else:
            check_loads(statement)

    # -- metadata agreement -----------------------------------------------

    def check_layout(self) -> None:
        observed_blocks = {
            site.key for site in self.sites if site.key.startswith("b")
        }
        declared_blocks = set(self.meta.block_keys)
        for missing in sorted(declared_blocks - observed_blocks):
            self.finding(
                1,
                "kernel-statics-mismatch",
                f"metadata declares statics site {missing!r} but the "
                f"source never loads it",
            )
        for extra in sorted(observed_blocks - declared_blocks):
            self.finding(
                1,
                "kernel-statics-mismatch",
                f"source loads statics site {extra!r} that the metadata "
                f"does not declare; binding can never hoist it",
            )
        scans_meta = set(self.meta.block_scans)
        if scans_meta != declared_blocks:
            self.finding(
                1,
                "kernel-statics-mismatch",
                f"block_scans keys {tuple(sorted(scans_meta))!r} disagree "
                f"with block_sites keys "
                f"{tuple(sorted(declared_blocks))!r}",
            )


def _last_line(node: ast.AST) -> int:
    return getattr(node, "end_lineno", None) or node.lineno


def verify_kernel_source(
    source: str, meta: KernelMeta, origin: str = "<kernel>"
) -> list[Finding]:
    """Verify one emitted kernel's source against its metadata."""
    try:
        tree = ast.parse(source)
        compile(source, origin, "exec")
    except SyntaxError as exc:
        return [
            Finding(
                file=origin,
                line=exc.lineno or 1,
                rule_id="kernel-compile-error",
                severity="error",
                message=f"emitted kernel does not compile: {exc.msg}",
            )
        ]
    fn = next(
        (
            node
            for node in tree.body
            if isinstance(node, ast.FunctionDef) and node.name == "_kernel"
        ),
        None,
    )
    if fn is None:
        return [
            Finding(
                file=origin,
                line=1,
                rule_id="kernel-compile-error",
                severity="error",
                message="emitted source defines no _kernel function",
            )
        ]
    auditor = _KernelAuditor(meta, origin)
    auditor.walk_body(fn.body, ())
    auditor.check_temp_discipline(fn)
    auditor.check_names(fn)
    auditor.check_layout()
    return auditor.findings


def verify_kernel(compiled, origin: str | None = None) -> list[Finding]:
    """Verify a ``CompiledPlan``'s emitted source end to end."""
    if origin is None:
        origin = f"repro.codegen[{compiled.semiring.name}]"
    return verify_kernel_source(compiled.source, meta_for(compiled), origin)


def verify_bound_statics(compiled, bound, origin: str) -> list[Finding]:
    """Every key a BoundPlan hoists must be a declared statics site."""
    declared = (
        {f"t:{name}" for name in compiled.scan_names}
        | {key for key, *_ in compiled.index_sites}
        | {key for key, *_ in compiled.block_sites}
    )
    findings = []
    for key in sorted(set(bound.statics) - declared):
        findings.append(
            Finding(
                file=origin,
                line=1,
                rule_id="kernel-statics-mismatch",
                severity="error",
                message=(
                    f"bound plan hoists statics key {key!r} that the "
                    f"kernel never declares; the kernel would ignore it"
                ),
            )
        )
    return findings


class KernelChecker(BaseChecker):
    name = "kernels"
    rules = (
        "kernel-world-read",
        "kernel-temp-reuse",
        "kernel-name-collision",
        "kernel-free-variable",
        "kernel-statics-mismatch",
        "kernel-compile-error",
    )

    def check_project(self, context: AnalysisContext) -> Iterator[Finding]:
        if context.options.get("skip_kernel_corpus"):
            return
        try:
            from repro.analysis.corpus import build_corpus

            entries = build_corpus()
        except Exception as exc:  # surface as a finding, never a crash
            yield Finding(
                file="src/repro/analysis/corpus.py",
                line=1,
                rule_id="kernel-compile-error",
                severity="error",
                message=(
                    f"could not build the kernel verification corpus: "
                    f"{type(exc).__name__}: {exc}"
                ),
            )
            return
        for entry in entries:
            origin = f"repro.codegen[{entry.name}]"
            yield from verify_kernel(entry.compiled, origin)
            if entry.bound is not None:
                yield from verify_bound_statics(
                    entry.compiled, entry.bound, origin
                )
