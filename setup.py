"""Setuptools shim for environments without the ``wheel`` package.

``pip install -e .`` (PEP 660) requires ``wheel``; this file keeps the
legacy ``python setup.py develop`` path working in offline environments.
"""

from setuptools import setup

setup()
