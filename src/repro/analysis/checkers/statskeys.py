"""Stats/fingerprint lint.

Answer fingerprinting (:mod:`repro.server.codec`) hashes a result's
stats after dropping the keys declared in ``VOLATILE_STAT_KEYS`` —
wall-clock times, cache hit counts, worker counts and other values that
legitimately differ between two runs of the same query.  A stats key
that is volatile **but not declared so** silently breaks fingerprint
equality between runs (the PR-8 ``batched`` bug class); a key nobody
classified is a landmine waiting for the first numpy-vs-pure or
parallel-vs-serial divergence.

This lint closes the loop statically: every key written into a stats
mapping anywhere under ``engine/``, ``codegen/`` or ``server/`` must be
declared, either in ``DETERMINISTIC_STAT_KEYS`` (same value for the
same query+data, fingerprint-relevant) or in ``VOLATILE_STAT_KEYS``
(dropped before hashing).  The declarations themselves are read
statically from the scanned tree — the module defining both frozensets
as literals (``repro/server/codec.py``) is discovered, not imported.

Tracked mappings, by naming convention: locals named ``stats`` /
``info`` or ending in ``stats`` / ``_info``, and attributes named
``.stats`` / ``.last_run_info``.  Keys must be string literals (or loop
variables over a literal tuple — the ``for key in ("a", "b")`` delta
idiom); anything else is ``stats-dynamic-key``.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.findings import Finding
from repro.analysis.runner import AnalysisContext, BaseChecker
from repro.analysis.source import SourceModule

__all__ = ["StatsKeyChecker"]

_DECL_NAMES = ("DETERMINISTIC_STAT_KEYS", "VOLATILE_STAT_KEYS")

#: Directories whose modules are subject to the lint.
_SCANNED_PARTS = frozenset({"engine", "codegen", "server"})

_FUNCTION_NODES = (ast.FunctionDef, ast.AsyncFunctionDef)


def _tracked_name(node: ast.expr) -> str | None:
    """The display name of a tracked stats mapping, if ``node`` is one."""
    if isinstance(node, ast.Name):
        name = node.id
        if name in ("stats", "info") or name.endswith(("stats", "_info")):
            return name
    if isinstance(node, ast.Attribute):
        if node.attr in ("stats", "last_run_info"):
            return node.attr
    return None


def _literal_str_elements(node: ast.expr) -> tuple[str, ...] | None:
    if isinstance(node, (ast.Tuple, ast.List, ast.Set)):
        keys = []
        for element in node.elts:
            if isinstance(element, ast.Constant) and isinstance(
                element.value, str
            ):
                keys.append(element.value)
            else:
                return None
        return tuple(keys)
    return None


def collect_declared_keys(modules: list[SourceModule]) -> set[str] | None:
    """The union of both declaration frozensets, read statically.

    Returns ``None`` when no scanned module declares them — the lint
    then has nothing to check against and stays silent.
    """
    declared: set[str] | None = None
    for module in modules:
        for statement in module.tree.body:
            if not isinstance(statement, ast.Assign):
                continue
            for target in statement.targets:
                if (
                    not isinstance(target, ast.Name)
                    or target.id not in _DECL_NAMES
                ):
                    continue
                value = statement.value
                if (
                    isinstance(value, ast.Call)
                    and isinstance(value.func, ast.Name)
                    and value.func.id == "frozenset"
                    and len(value.args) == 1
                ):
                    value = value.args[0]
                keys = _literal_str_elements(value)
                if keys is not None:
                    declared = (declared or set()) | set(keys)
    return declared


class StatsKeyChecker(BaseChecker):
    name = "statskeys"
    rules = ("stats-undeclared-key", "stats-dynamic-key")

    def check_project(self, context: AnalysisContext) -> Iterator[Finding]:
        declared = collect_declared_keys(context.modules)
        if declared is None:
            return
        include_all = bool(context.options.get("statskeys_include_all"))
        for module in context.modules:
            parts = set(module.path.replace("\\", "/").split("/"))
            if not include_all and not (parts & _SCANNED_PARTS):
                continue
            yield from self._check_module_keys(module, declared)

    def _check_module_keys(
        self, module: SourceModule, declared: set[str]
    ) -> Iterator[Finding]:
        yield from self._visit_body(module, module.tree.body, declared, {})

    def _visit_body(
        self,
        module: SourceModule,
        body: list[ast.stmt],
        declared: set[str],
        loop_keys: dict[str, tuple[str, ...]],
    ) -> Iterator[Finding]:
        for statement in body:
            yield from self._visit(module, statement, declared, loop_keys)

    def _visit(
        self,
        module: SourceModule,
        node: ast.stmt,
        declared: set[str],
        loop_keys: dict[str, tuple[str, ...]],
    ) -> Iterator[Finding]:
        if isinstance(node, ast.Assign):
            for target in node.targets:
                yield from self._check_target(
                    module, target, node.value, declared, loop_keys
                )
            yield from self._check_calls(module, node.value, declared)
        elif isinstance(node, ast.AugAssign):
            yield from self._check_target(
                module, node.target, None, declared, loop_keys
            )
        elif isinstance(node, ast.Expr):
            yield from self._check_calls(module, node.value, declared)
        elif isinstance(node, ast.Return):
            if node.value is not None:
                yield from self._check_calls(module, node.value, declared)
        elif isinstance(node, (ast.For, ast.AsyncFor)):
            inner = dict(loop_keys)
            if isinstance(node.target, ast.Name):
                keys = _literal_str_elements(node.iter)
                if keys is not None:
                    inner[node.target.id] = keys
                else:
                    inner.pop(node.target.id, None)
            yield from self._visit_body(module, node.body, declared, inner)
            yield from self._visit_body(module, node.orelse, declared, loop_keys)
        elif isinstance(node, (ast.If, ast.While)):
            yield from self._visit_body(module, node.body, declared, loop_keys)
            yield from self._visit_body(
                module, node.orelse, declared, loop_keys
            )
        elif isinstance(node, (ast.With, ast.AsyncWith)):
            yield from self._visit_body(module, node.body, declared, loop_keys)
        elif isinstance(node, ast.Try):
            yield from self._visit_body(module, node.body, declared, loop_keys)
            for handler in node.handlers:
                yield from self._visit_body(
                    module, handler.body, declared, loop_keys
                )
            yield from self._visit_body(module, node.orelse, declared, loop_keys)
            yield from self._visit_body(
                module, node.finalbody, declared, loop_keys
            )
        elif isinstance(node, _FUNCTION_NODES):
            yield from self._visit_body(module, node.body, declared, {})
        elif isinstance(node, ast.ClassDef):
            yield from self._visit_body(module, node.body, declared, {})

    def _check_target(
        self,
        module: SourceModule,
        target: ast.expr,
        value: ast.expr | None,
        declared: set[str],
        loop_keys: dict[str, tuple[str, ...]],
    ) -> Iterator[Finding]:
        if isinstance(target, ast.Subscript):
            tracked = _tracked_name(target.value)
            if tracked is None:
                return
            key_node = target.slice
            if isinstance(key_node, ast.Constant) and isinstance(
                key_node.value, str
            ):
                yield from self._judge(
                    module, target, tracked, key_node.value, declared
                )
            elif (
                isinstance(key_node, ast.Name)
                and key_node.id in loop_keys
            ):
                for key in loop_keys[key_node.id]:
                    yield from self._judge(
                        module, target, tracked, key, declared
                    )
            else:
                yield Finding(
                    file=module.path,
                    line=target.lineno,
                    rule_id="stats-dynamic-key",
                    severity="error",
                    message=(
                        f"{tracked}[...] written through a non-literal key; "
                        f"use a string literal (or a loop over a literal "
                        f"tuple) so the stats lint can classify it"
                    ),
                )
        elif value is not None:
            tracked = _tracked_name(target)
            if tracked is None:
                return
            yield from self._check_dict_literal(
                module, value, tracked, declared
            )

    def _check_dict_literal(
        self,
        module: SourceModule,
        value: ast.expr,
        tracked: str,
        declared: set[str],
    ) -> Iterator[Finding]:
        if isinstance(value, ast.Dict):
            for key_node in value.keys:
                if key_node is None:
                    continue  # **spread: the source mapping is checked at
                    # its own write sites
                if isinstance(key_node, ast.Constant) and isinstance(
                    key_node.value, str
                ):
                    yield from self._judge(
                        module, key_node, tracked, key_node.value, declared
                    )
                else:
                    yield Finding(
                        file=module.path,
                        line=key_node.lineno,
                        rule_id="stats-dynamic-key",
                        severity="error",
                        message=(
                            f"{tracked} dict literal has a non-literal key; "
                            f"use string literals so the stats lint can "
                            f"classify them"
                        ),
                    )
        elif isinstance(value, ast.Call) and isinstance(value.func, ast.Name):
            if value.func.id == "dict":
                for keyword in value.keywords:
                    if keyword.arg is not None:
                        yield from self._judge(
                            module, keyword, tracked, keyword.arg, declared
                        )

    def _check_calls(
        self, module: SourceModule, expr: ast.expr, declared: set[str]
    ) -> Iterator[Finding]:
        for node in ast.walk(expr):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if not isinstance(func, ast.Attribute):
                continue
            tracked = _tracked_name(func.value)
            if tracked is None:
                continue
            if func.attr == "setdefault" and node.args:
                key_node = node.args[0]
                if isinstance(key_node, ast.Constant) and isinstance(
                    key_node.value, str
                ):
                    yield from self._judge(
                        module, node, tracked, key_node.value, declared
                    )
            elif func.attr == "update" and node.args:
                source = node.args[0]
                if isinstance(source, ast.Dict):
                    yield from self._check_dict_literal(
                        module, source, tracked, declared
                    )
                # updating from another tracked mapping (or an opaque
                # expression) is silent: its keys are checked where
                # *they* are written.

    def _judge(
        self,
        module: SourceModule,
        node: ast.AST,
        tracked: str,
        key: str,
        declared: set[str],
    ) -> Iterator[Finding]:
        if key in declared:
            return
        yield Finding(
            file=module.path,
            line=getattr(node, "lineno", 1),
            rule_id="stats-undeclared-key",
            severity="error",
            message=(
                f"stats key {key!r} (written into {tracked}) is declared "
                f"in neither DETERMINISTIC_STAT_KEYS nor "
                f"VOLATILE_STAT_KEYS; classify it so answer "
                f"fingerprinting stays stable"
            ),
        )
