"""TPC-H workload: schemas, seeded data generator, and the paper's queries."""

from repro.workloads.tpch.datagen import (
    TPCHConfig,
    generate_tpch,
    table_cardinalities,
)
from repro.workloads.tpch.queries import (
    alias_table,
    prepare_q2_aliases,
    tpch_q1,
    tpch_q1_full,
    tpch_q2,
)
from repro.workloads.tpch.schema import TPCH_SCHEMAS, alias_schema

__all__ = [
    "TPCHConfig",
    "generate_tpch",
    "table_cardinalities",
    "tpch_q1",
    "tpch_q1_full",
    "tpch_q2",
    "prepare_q2_aliases",
    "alias_table",
    "TPCH_SCHEMAS",
    "alias_schema",
]
