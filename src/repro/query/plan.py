"""Compatibility shim: the logical rewrites moved to
:mod:`repro.query.optimizer`, which organises them as a rule registry
applied to a fixpoint (with an inspectable trace, see ``Session.explain``).

This module re-exports the historical names so existing imports keep
working; new code should import from :mod:`repro.query.optimizer`.
"""

from __future__ import annotations

from repro.query.optimizer import (
    collapse_projections,
    merge_selections,
    optimize,
    pushdown_projections,
    pushdown_selections,
)

__all__ = [
    "optimize",
    "merge_selections",
    "collapse_projections",
    "pushdown_projections",
    "pushdown_selections",
]
