"""The central property: compiled distributions equal brute-force ones.

Proposition 4 states that Algorithm 1 produces a d-tree with the same
probability distribution as the input expression.  These tests check it on
randomly generated semiring expressions, semimodule expressions, and
conditional expressions, under both set (B) and bag (N) semantics, with
and without pruning, and across all Shannon heuristics.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algebra.semiring import BOOLEAN, NATURALS
from repro.algebra.simplify import normalize
from repro.core.compile import Compiler
from repro.core.joint import JointCompiler
from repro.prob.space import ProbabilitySpace

from tests.property.strategies import (
    boolean_registries,
    conditions,
    integer_registries,
    module_exprs,
    queries,
    query_databases,
    semiring_exprs,
)

SETTINGS = settings(max_examples=60, deadline=None)


class TestSemiringEquivalence:
    @SETTINGS
    @given(boolean_registries(), semiring_exprs(depth=3))
    def test_boolean_semiring(self, registry, expr):
        compiled = Compiler(registry, BOOLEAN).distribution(expr)
        brute = ProbabilitySpace(registry, BOOLEAN).distribution_of(expr)
        assert compiled.almost_equals(brute)

    @SETTINGS
    @given(integer_registries(), semiring_exprs(depth=2))
    def test_naturals_semiring(self, registry, expr):
        expr = _restrict(expr, registry)
        compiled = Compiler(registry, NATURALS).distribution(expr)
        brute = ProbabilitySpace(registry, NATURALS).distribution_of(expr)
        assert compiled.almost_equals(brute)


class TestModuleEquivalence:
    @SETTINGS
    @given(boolean_registries(), module_exprs())
    def test_boolean_module(self, registry, expr):
        compiled = Compiler(registry, BOOLEAN).distribution(expr)
        brute = ProbabilitySpace(registry, BOOLEAN).distribution_of(expr)
        assert compiled.almost_equals(brute)

    @SETTINGS
    @given(integer_registries(), module_exprs(max_terms=3))
    def test_naturals_module(self, registry, expr):
        expr = _restrict(expr, registry)
        compiled = Compiler(registry, NATURALS).distribution(expr)
        brute = ProbabilitySpace(registry, NATURALS).distribution_of(expr)
        assert compiled.almost_equals(brute)


class TestConditionEquivalence:
    @SETTINGS
    @given(boolean_registries(), conditions())
    def test_conditions_with_pruning(self, registry, expr):
        compiled = Compiler(registry, BOOLEAN, pruning=True).distribution(expr)
        brute = ProbabilitySpace(registry, BOOLEAN).distribution_of(expr)
        assert compiled.almost_equals(brute)

    @SETTINGS
    @given(boolean_registries(), conditions())
    def test_pruning_changes_nothing(self, registry, expr):
        with_pruning = Compiler(registry, BOOLEAN, pruning=True).distribution(expr)
        without = Compiler(registry, BOOLEAN, pruning=False).distribution(expr)
        assert with_pruning.almost_equals(without)


class TestHeuristicInvariance:
    @settings(max_examples=30, deadline=None)
    @given(
        boolean_registries(),
        semiring_exprs(depth=3),
        st.sampled_from(["most-occurrences", "fewest-occurrences", "lexicographic"]),
    )
    def test_heuristic_does_not_change_distribution(self, registry, expr, heuristic):
        compiled = Compiler(registry, BOOLEAN, heuristic=heuristic).distribution(expr)
        brute = ProbabilitySpace(registry, BOOLEAN).distribution_of(expr)
        assert compiled.almost_equals(brute)


class TestDistributionWellFormedness:
    @SETTINGS
    @given(boolean_registries(), module_exprs())
    def test_total_mass_is_one(self, registry, expr):
        dist = Compiler(registry, BOOLEAN).distribution(expr)
        assert abs(dist.total() - 1.0) < 1e-7

    @SETTINGS
    @given(boolean_registries(), semiring_exprs(depth=3))
    def test_normalisation_preserves_distribution(self, registry, expr):
        compiler = Compiler(registry, BOOLEAN)
        original = ProbabilitySpace(registry, BOOLEAN).distribution_of(expr)
        simplified = normalize(expr, BOOLEAN)
        assert compiler.distribution(simplified).almost_equals(original)


class TestJointEquivalence:
    @settings(max_examples=40, deadline=None)
    @given(
        boolean_registries(),
        semiring_exprs(depth=2),
        semiring_exprs(depth=2),
    )
    def test_joint_matches_enumeration(self, registry, e1, e2):
        compiler = Compiler(registry, BOOLEAN)
        joint = JointCompiler(compiler).joint_distribution([e1, e2])
        brute = ProbabilitySpace(registry, BOOLEAN).joint_distribution_of([e1, e2])
        assert joint.almost_equals(brute)


class TestOptimizerPipelineEquivalence:
    """The full rule pipeline preserves result tuples and annotation
    distributions on random queries (step-I invariance: the Green-et-al.
    semiring equivalences are annotation-value-preserving)."""

    @settings(max_examples=40, deadline=None)
    @given(query_databases(), queries())
    def test_tuples_and_probabilities_preserved(self, db, query):
        from repro.engine.sprout import SproutEngine
        from repro.query.optimizer import optimize

        original = SproutEngine(db).run(query).tuple_probabilities()
        rewritten = optimize(query, db.catalog())
        optimized = SproutEngine(db).run(rewritten).tuple_probabilities()
        assert set(original) == set(optimized)
        for key, probability in original.items():
            assert abs(optimized[key] - probability) < 1e-7, key

    @settings(max_examples=40, deadline=None)
    @given(query_databases(), queries())
    def test_annotation_distributions_preserved(self, db, query):
        from repro.algebra.semimodule import ModuleExpr
        from repro.query.executor import evaluate

        compiler = Compiler(db.registry, BOOLEAN)

        def distributions(table):
            result = {}
            for row in table:
                if any(isinstance(v, ModuleExpr) for v in row.values):
                    continue  # joint semantics covered by the test above
                assert row.values not in result  # pvc-tables are sets
                result[row.values] = compiler.distribution(row.annotation)
            return result

        plain = distributions(evaluate(query, db, optimize=False))
        optimized = distributions(evaluate(query, db, optimize=True))
        zero = BOOLEAN.zero
        for key in set(plain) | set(optimized):
            left, right = plain.get(key), optimized.get(key)
            if left is None:
                # Row only one plan materialised: it must be vacuous.
                assert right[zero] > 1 - 1e-9, key
            elif right is None:
                assert left[zero] > 1 - 1e-9, key
            else:
                assert left.almost_equals(right), key

    @settings(max_examples=25, deadline=None)
    @given(query_databases(), queries())
    def test_matches_possible_worlds_oracle(self, db, query):
        from repro.engine.naive import NaiveEngine
        from repro.engine.sprout import SproutEngine
        from repro.query.optimizer import optimize

        exact = NaiveEngine(db).tuple_probabilities(query)
        rewritten = optimize(query, db.catalog())
        fast = SproutEngine(db).run(rewritten).tuple_probabilities()
        assert set(exact) == set(fast)
        for key, probability in exact.items():
            assert abs(fast[key] - probability) < 1e-7, key


def _restrict(expr, registry):
    """Drop variables the (smaller) integer registries do not declare."""
    from repro.algebra.expressions import ONE

    mapping = {name: ONE for name in expr.variables if name not in registry}
    return expr.substitute(mapping)
