"""Deterministic reduction of per-shard results.

Workers return partial results keyed by answer tuples (sample counts) or
by normalized annotations (compiled distributions).  The reducers here
merge them in *shard order* — the order of the deterministic shard plan,
not the order shards happened to finish — so the merged value, including
dict iteration order, is identical for any worker count.
"""

from __future__ import annotations

from typing import Iterable, Mapping

__all__ = ["merge_counts", "merge_stat_sums"]


def merge_counts(shard_counts: Iterable[Mapping]) -> dict:
    """Sum per-key integer counts across shards, in shard order."""
    merged: dict = {}
    for counts in shard_counts:
        for key, count in counts.items():
            merged[key] = merged.get(key, 0) + count
    return merged


def merge_stat_sums(infos: Iterable[Mapping], keys: tuple) -> dict:
    """Sum the named numeric diagnostics across per-shard info dicts."""
    totals = dict.fromkeys(keys, 0)
    for info in infos:
        for key in keys:
            totals[key] += info.get(key, 0)
    return totals
