"""Tests for Definition-5 query validation."""

import pytest

from repro.db.schema import Schema
from repro.errors import QueryValidationError
from repro.query.ast import (
    AggSpec,
    GroupAgg,
    Project,
    Select,
    Union,
    relation,
)
from repro.query.predicates import cmp_, eq
from repro.query.validate import validate_query

CATALOG = {
    "R": Schema(["a", "b"]),
    "S": Schema(["a", "b"]),
}


def agg_query():
    """$_{a; t←SUM(b)}(R) — exposes aggregation attribute t."""
    return GroupAgg(relation("R"), ["a"], [AggSpec.of("t", "SUM", "b")])


class TestConstraint1:
    def test_projection_onto_aggregation_attribute_rejected(self):
        query = Project(agg_query(), ["t"])
        with pytest.raises(QueryValidationError, match="constraint 1"):
            validate_query(query, CATALOG)

    def test_projection_away_from_aggregate_ok(self):
        query = Project(agg_query(), ["a"])
        schema = validate_query(query, CATALOG)
        assert schema.attributes == ("a",)

    def test_grouping_by_aggregation_attribute_rejected(self):
        query = GroupAgg(agg_query(), ["t"], [AggSpec.of("n", "COUNT")])
        with pytest.raises(QueryValidationError, match="constraint 1"):
            validate_query(query, CATALOG)

    def test_aggregating_aggregation_attribute_rejected(self):
        query = GroupAgg(agg_query(), ["a"], [AggSpec.of("s", "SUM", "t")])
        with pytest.raises(QueryValidationError, match="nested semimodule"):
            validate_query(query, CATALOG)


class TestConstraint2:
    def test_paper_example_3_invalid_union(self):
        # R ∪ $_{A;β←SUM(B)}(S) is not in Q.
        query = Union(relation("R"), GroupAgg(
            relation("S"), ["a"], [AggSpec.of("b", "SUM", "b")]
        ))
        with pytest.raises(QueryValidationError, match="constraint 2"):
            validate_query(query, CATALOG)

    def test_paper_example_3_valid_variant(self):
        # π_A(R) ∪ π_A(σ_{β≥5}($_{A;β←SUM(B)}(S))) is a valid Q-query.
        left = Project(relation("R"), ["a"])
        inner = GroupAgg(relation("S"), ["a"], [AggSpec.of("beta", "SUM", "b")])
        right = Project(Select(inner, cmp_("beta", ">=", 5)), ["a"])
        schema = validate_query(Union(left, right), CATALOG)
        assert schema.attributes == ("a",)


class TestSelectionsOnAggregates:
    def test_theta_comparison_with_aggregate_allowed(self):
        query = Select(agg_query(), cmp_("t", "<=", 50))
        validate_query(query, CATALOG)

    def test_equality_between_value_and_aggregate_allowed(self):
        # Example 3's σ_{B=γ} pattern.
        from repro.query.ast import Product

        inner = GroupAgg(relation("S"), [], [AggSpec.of("g", "MIN", "b")])
        query = Select(Product(relation("R"), inner), eq("b", "g"))
        validate_query(query, CATALOG)

    def test_plain_queries_validate(self):
        query = Project(Select(relation("R"), eq("a", 1)), ["b"])
        assert validate_query(query, CATALOG).attributes == ("b",)
